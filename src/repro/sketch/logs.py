"""Accountable packet logs kept inside the VIF enclave (paper III-B, V-A).

Two logs per filter:

* :class:`SourceIPLog` — per-source-IP count-min sketch over **incoming**
  packets.  Neighbor ASes of the filtering network compare their own copy
  against it to detect *drop before filtering*.
* :class:`FiveTupleLog` — per-5-tuple count-min sketch over **forwarded**
  packets.  The victim compares against it to detect *injection after
  filtering* and *drop after filtering*.

Both wrap :class:`~repro.sketch.countmin.CountMinSketch` with the right key
extraction, so enclave code and observer code cannot accidentally hash
different fields.
"""

from __future__ import annotations

from collections import Counter as _Multiset
from typing import Sequence

from repro.dataplane.packet import FiveTuple, Packet
from repro.sketch.countmin import CountMinSketch, PAPER_DEPTH, PAPER_WIDTH


class SourceIPLog:
    """Count-min sketch keyed on packet source IP."""

    def __init__(
        self,
        depth: int = PAPER_DEPTH,
        width: int = PAPER_WIDTH,
        family_seed: str = "vif/in",
    ) -> None:
        self.sketch = CountMinSketch(depth, width, family_seed)

    def record(self, packet: Packet) -> None:
        """Log one incoming packet."""
        self.sketch.update(packet.five_tuple.src_ip_key())

    def record_burst(self, packets: Sequence[Packet]) -> None:
        """Log a whole burst in one bulk sketch update.

        Keys are coalesced first, so a burst dominated by few sources pays
        one hash per *unique* source while every packet still counts.
        """
        self.sketch.update_weighted(
            _Multiset(packet.five_tuple.src_ip_key() for packet in packets)
        )

    def estimate(self, src_ip: str) -> int:
        """Estimated number of packets logged for ``src_ip``."""
        return self.sketch.estimate(src_ip.encode("ascii"))

    @property
    def total(self) -> int:
        return self.sketch.total

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes()


class FiveTupleLog:
    """Count-min sketch keyed on the full five-tuple."""

    def __init__(
        self,
        depth: int = PAPER_DEPTH,
        width: int = PAPER_WIDTH,
        family_seed: str = "vif/out",
    ) -> None:
        self.sketch = CountMinSketch(depth, width, family_seed)

    def record(self, packet: Packet) -> None:
        """Log one forwarded packet."""
        self.sketch.update(packet.five_tuple.key())

    def record_burst(self, packets: Sequence[Packet]) -> None:
        """Log a whole burst in one bulk sketch update.

        Keys are coalesced first, so repeated packets of one flow pay a
        single hash while every packet still counts.
        """
        self.sketch.update_weighted(
            _Multiset(packet.five_tuple.key() for packet in packets)
        )

    def estimate(self, flow: FiveTuple) -> int:
        """Estimated number of packets logged for ``flow``."""
        return self.sketch.estimate(flow.key())

    @property
    def total(self) -> int:
        return self.sketch.total

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes()


class PacketLogPair:
    """The (incoming, outgoing) log pair a VIF filter maintains."""

    def __init__(self, family_seed: str = "vif") -> None:
        self.incoming = SourceIPLog(family_seed=f"{family_seed}/in")
        self.outgoing = FiveTupleLog(family_seed=f"{family_seed}/out")

    def record_incoming(self, packet: Packet) -> None:
        self.incoming.record(packet)

    def record_forwarded(self, packet: Packet) -> None:
        self.outgoing.record(packet)

    def record_incoming_burst(self, packets: Sequence[Packet]) -> None:
        """Log a burst of arriving packets (the burst-ECall fast path)."""
        if packets:
            self.incoming.record_burst(packets)

    def record_forwarded_burst(self, packets: Sequence[Packet]) -> None:
        """Log the forwarded subset of a burst."""
        if packets:
            self.outgoing.record_burst(packets)

    def memory_bytes(self) -> int:
        """Combined enclave footprint of both sketches (~2 MB at defaults)."""
        return self.incoming.memory_bytes() + self.outgoing.memory_bytes()
