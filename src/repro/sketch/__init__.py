"""Count-min sketch packet logs (paper section III-B and V-A).

The VIF enclave keeps two sketches per filter: a per-source-IP sketch over
*incoming* packets (lets neighbor ASes detect drop-before-filtering) and a
per-5-tuple sketch over *forwarded* packets (lets the victim detect
injection-after / drop-after-filtering).  The paper's configuration is two
independent hash rows, 64 K bins each, 64-bit counters — about 1 MB per
sketch instance.
"""

from repro.sketch.hashing import HashFamily
from repro.sketch.bounds import ErrorBound, dimensions_for, paper_bound
from repro.sketch.countmin import CountMinSketch, PAPER_DEPTH, PAPER_WIDTH
from repro.sketch.comparison import (
    Discrepancy,
    SketchComparison,
    compare_sketches,
)
from repro.sketch.logs import FiveTupleLog, PacketLogPair, SourceIPLog

__all__ = [
    "CountMinSketch",
    "Discrepancy",
    "ErrorBound",
    "FiveTupleLog",
    "HashFamily",
    "dimensions_for",
    "paper_bound",
    "PAPER_DEPTH",
    "PAPER_WIDTH",
    "PacketLogPair",
    "SketchComparison",
    "SourceIPLog",
    "compare_sketches",
]
