"""Exception hierarchy for the VIF reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  Subsystems add
narrower classes; security-relevant detections (attestation failures, bypass
detections, load-balancer misbehavior) get their own types because callers
routinely branch on them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class RuleError(ReproError):
    """A filter rule is malformed or fails validation."""


class RuleValidationError(RuleError):
    """A rule failed origin (RPKI-style) validation and must be rejected."""


class LookupError_(ReproError):
    """A rule-lookup structure was used incorrectly (e.g. duplicate insert)."""


class MembershipVersionError(LookupError_):
    """A serialized membership-tier blob was built under an incompatible
    hash-family derivation or blob layout and must not be loaded."""


class EnclaveError(ReproError):
    """Base class for TEE-substrate errors."""


class EnclaveMemoryError(EnclaveError):
    """An allocation would exceed the enclave's EPC budget."""


class EnclaveSealedError(EnclaveError):
    """An operation was attempted on a destroyed / not-yet-initialized enclave."""


class AttestationError(EnclaveError):
    """Remote attestation failed: bad measurement, bad signature, stale quote."""


class SecureChannelError(EnclaveError):
    """Message authentication failed or the channel is not established."""


class BypassDetected(ReproError):
    """A sketch comparison revealed packets dropped/injected outside the filter.

    Raised (or returned as evidence) when a victim network or a neighbor AS
    finds a discrepancy between its local packet log and the enclave's
    authenticated log (paper section III-B).
    """


class LoadBalancerMisbehavior(ReproError):
    """An enclave received packets that match none of its installed rules.

    Per section IV-B of the paper, each enclave checks every packet handed to
    it by the untrusted load balancer against its rule set and reports any
    mismatch to the DDoS victim.
    """


class DistributionError(ReproError):
    """The rule-distribution protocol failed (infeasible instance, bad state)."""


class InfeasibleError(DistributionError):
    """No allocation satisfies the per-enclave bandwidth/memory constraints."""


class SolverError(ReproError):
    """The MILP/LP machinery hit an internal failure (not mere infeasibility)."""


class FleetError(ReproError):
    """Fleet-management failure (health monitoring, failover, recovery)."""


class RecoveryFailed(FleetError):
    """A failover could not be completed (e.g. attestation retries exhausted).

    Raised only after the fleet manager has exhausted its bounded
    retry/backoff budget; transient IAS outages shorter than the budget are
    absorbed silently (modulo counters).
    """


class SessionError(ReproError):
    """A VIF victim<->filtering-network session was used out of order."""


class SessionAborted(SessionError):
    """The session was aborted after misbehavior was detected."""


class TopologyError(ReproError):
    """The AS-level topology is malformed (unknown AS, bad relationship...)."""


class RoutingError(ReproError):
    """Route computation failed (no valley-free path, bad policy state)."""
