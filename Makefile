# Convenience targets for the VIF reproduction.

.PHONY: install test bench bench-full experiments examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	VIF_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.cli run all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

all: install test bench experiments
