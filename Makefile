# Convenience targets for the VIF reproduction.

.PHONY: install test bench bench-smoke bench-full experiments examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast sanity pass over the benchmark suite: skips the slow-marked
# paper-scale experiments and disables benchmark timing loops.
bench-smoke:
	pytest -m "not slow" --benchmark-disable benchmarks/

bench-full:
	VIF_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.cli run all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

all: install test bench experiments
