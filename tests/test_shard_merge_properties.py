"""Shard-then-merge equivalence properties of the multi-core data plane.

The load-bearing invariant of :mod:`repro.dataplane.shard`: for any trace
and any worker count, RSS-sharding the flows across worker processes and
centrally merging the per-worker sketch logs is **bit-identical** to one
single-process filter over the same trace — same per-packet verdicts, same
sketch bins, same exact totals.  Runs over seeded random traces (process
spawning makes hypothesis shrinking impractical here, so this is a seeded
property loop, like the system-level property suites).
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.shard import ShardedDataPlane, run_single_process_reference

WORKER_COUNTS = (1, 2, 4)


def _random_rules(rng: random.Random, n: int):
    rules = []
    for i in range(n):
        prefix = f"10.{rng.randrange(32)}.{rng.randrange(8)}.0/24"
        if rng.random() < 0.5:
            rules.append(
                FilterRule(
                    rule_id=i + 1,
                    pattern=FlowPattern(dst_prefix=prefix),
                    action=rng.choice([Action.DROP, Action.ALLOW]),
                )
            )
        else:
            rules.append(
                FilterRule(
                    rule_id=i + 1,
                    pattern=FlowPattern(dst_prefix=prefix),
                    p_allow=rng.choice([0.25, 0.5, 0.75]),
                )
            )
    return rules


def _random_trace(rng: random.Random, num_flows: int, num_packets: int):
    flows = [
        FiveTuple(
            src_ip=f"172.16.{rng.randrange(16)}.{rng.randrange(256)}",
            dst_ip=f"10.{rng.randrange(32)}.{rng.randrange(8)}."
            f"{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice([80, 443, 53]),
            protocol=rng.choice([Protocol.TCP, Protocol.UDP]),
        )
        for _ in range(num_flows)
    ]
    return [
        Packet(five_tuple=rng.choice(flows), size=rng.choice([64, 600, 1500]))
        for _ in range(num_packets)
    ]


@pytest.mark.parametrize("seed", ["alpha", "beta", "gamma"])
def test_shard_then_merge_equals_single_sketch(seed):
    rng = random.Random(seed)
    rules = _random_rules(rng, rng.randrange(8, 24))
    packets = _random_trace(
        rng, num_flows=rng.randrange(16, 48), num_packets=1200
    )
    reference = run_single_process_reference(rules, packets)

    for workers in WORKER_COUNTS:
        plane = ShardedDataPlane(rules, num_workers=workers, batch_size=128)
        with plane:
            verdicts = plane.process(packets)
            result = plane.finish()
        assert verdicts == reference.verdicts, f"workers={workers}"
        assert result.incoming.bins() == reference.incoming.bins()
        assert result.outgoing.bins() == reference.outgoing.bins()
        assert result.incoming.total == reference.incoming.total
        assert result.outgoing.total == reference.outgoing.total
        assert result.packets == len(packets)
        assert result.packets_allowed == reference.packets_allowed
        assert result.packets_dropped == reference.packets_dropped
        assert sum(result.worker_packets) == len(packets)


def test_process_is_repeatable_across_calls():
    """Two process() calls on the same plane accumulate one merged log."""
    rng = random.Random("repeat")
    rules = _random_rules(rng, 12)
    first = _random_trace(rng, num_flows=24, num_packets=600)
    second = _random_trace(rng, num_flows=24, num_packets=600)
    reference = run_single_process_reference(rules, first + second)

    plane = ShardedDataPlane(rules, num_workers=2, batch_size=128)
    with plane:
        verdicts = plane.process(first) + plane.process(second)
        result = plane.finish()
    assert verdicts == reference.verdicts
    assert result.incoming.bins() == reference.incoming.bins()
    assert result.outgoing.bins() == reference.outgoing.bins()


def test_central_merge_conserves_update_accounting():
    """The coordinator's ``vif_sketch_updates_total`` books (a) every
    worker-side application folded in via metrics merge and (b) every
    occurrence the central sketch merges apply — nothing more, nothing
    less.  This is the accounting the un-instrumented merge used to lose."""
    rng = random.Random("books")
    rules = _random_rules(rng, 12)
    packets = _random_trace(rng, num_flows=24, num_packets=900)

    counter = obs.get_registry().counter("vif_sketch_updates_total")
    plane = ShardedDataPlane(rules, num_workers=4, batch_size=128)
    with plane:
        plane.process(packets)
        before = counter.value
        result = plane.finish()
    delta = counter.value - before

    # Worker-side bookings: every packet hits the incoming log, every
    # allowed packet the outgoing log.  Central merges re-apply every
    # worker's totals except worker 0's (whose deserialized sketches are
    # the merge base).
    worker_side = result.packets + result.packets_allowed
    base = result.per_worker[0]
    central = (result.packets - base["packets"]) + (
        result.packets_allowed - base["allowed"]
    )
    assert delta == worker_side + central


def test_rss_sharding_is_flow_granular():
    """Every packet of a flow lands on the same worker (per-flow state
    never straddles shards), and the workers together see each packet
    exactly once."""
    rng = random.Random("granular")
    rules = _random_rules(rng, 8)
    packets = _random_trace(rng, num_flows=12, num_packets=400)
    plane = ShardedDataPlane(rules, num_workers=4, batch_size=64)
    flow_to_shard = {}
    for packet in packets:
        shard = plane._shard_for(packet.five_tuple)
        existing = flow_to_shard.setdefault(packet.five_tuple, shard)
        assert existing == shard
    with plane:
        plane.process(packets)
        result = plane.finish()
    assert sum(result.worker_packets) == len(packets)
    from collections import Counter as TallyCounter

    expected = TallyCounter(
        flow_to_shard[p.five_tuple] for p in packets
    )
    assert result.worker_packets == [
        expected.get(w, 0) for w in range(plane.num_workers)
    ]
