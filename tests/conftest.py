"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.controller import IXPController
from repro.core.rules import Action, FilterRule, FlowPattern, RPKIRegistry
from repro.core.session import VIFSession
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.tee.attestation import IASService

VICTIM = "victim.example"
VICTIM_PREFIX = "203.0.113.0/24"
VICTIM_IP = "203.0.113.10"


@pytest.fixture
def http_flow() -> FiveTuple:
    return FiveTuple(
        src_ip="10.1.2.3",
        dst_ip=VICTIM_IP,
        src_port=43210,
        dst_port=80,
        protocol=Protocol.TCP,
    )


@pytest.fixture
def drop_rule() -> FilterRule:
    """Deterministic DROP for all TCP/80 to the victim prefix."""
    return FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80), protocol=Protocol.TCP
        ),
        action=Action.DROP,
        requested_by=VICTIM,
    )


@pytest.fixture
def half_rule() -> FilterRule:
    """The paper's running example: drop 50% of HTTP connections."""
    return FilterRule(
        rule_id=2,
        pattern=FlowPattern(
            dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80), protocol=Protocol.TCP
        ),
        p_allow=0.5,
        requested_by=VICTIM,
    )


@pytest.fixture
def ias() -> IASService:
    return IASService()


@pytest.fixture
def rpki() -> RPKIRegistry:
    registry = RPKIRegistry()
    registry.authorize(VICTIM, VICTIM_PREFIX)
    return registry


@pytest.fixture
def controller(ias) -> IXPController:
    ctl = IXPController(ias)
    ctl.launch_filters(1)
    return ctl


@pytest.fixture
def session(rpki, ias, controller) -> VIFSession:
    sess = VIFSession(VICTIM, rpki, ias, controller)
    sess.attest_filters()
    return sess


def make_packet(
    src_ip: str = "10.1.2.3",
    dst_ip: str = VICTIM_IP,
    src_port: int = 43210,
    dst_port: int = 80,
    protocol: Protocol = Protocol.TCP,
    size: int = 64,
    ingress_as=None,
) -> Packet:
    """Loose helper used across test modules."""
    return Packet(
        five_tuple=FiveTuple(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
        ),
        size=size,
        ingress_as=ingress_as,
    )
