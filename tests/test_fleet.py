"""FleetManager: health probes, failover, re-distribution, degradation."""

from __future__ import annotations

import pytest

from repro.core.controller import IXPController
from repro.core.fleet import (
    EnclaveHealth,
    FleetConfig,
    FleetManager,
)
from repro.core.rules import Action, FilterRule, FlowPattern, RPKIRegistry, RuleSet
from repro.core.session import VIFSession
from repro.errors import (
    ConfigurationError,
    EnclaveSealedError,
    FleetError,
    RecoveryFailed,
)
from repro.faults import FlakyIAS
from repro.optim import validate_allocation
from repro.tee.attestation import IASService
from repro.util.units import GBPS
from tests.conftest import VICTIM, make_packet


def build_rules(count: int = 8, rate_bps: float = 2.0 * GBPS) -> RuleSet:
    """One /24 per rule under 203.0.x.0; alternating DROP/ALLOW."""
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{100 + i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by=VICTIM,
                rate_bps=rate_bps,
            )
        )
    return rules


def rule_packet(i: int, src_ip: str = "10.9.8.7"):
    return make_packet(src_ip=src_ip, dst_ip=f"203.0.{100 + i}.5")


def build_fleet(
    rules: RuleSet,
    enclaves: int = 4,
    config: FleetConfig = None,
    ias: IASService = None,
    **deploy_params,
):
    controller = IXPController(ias or IASService())
    fleet = FleetManager(controller, config=config)
    fleet.deploy(rules, enclaves_override=enclaves, **deploy_params)
    return fleet


class TestDeployAndHealth:
    def test_deploy_launches_fleet_and_serves(self):
        rules = build_rules()
        fleet = build_fleet(rules, enclaves=4)
        assert len(fleet.controller.enclaves) == 4
        assert validate_allocation(fleet.allocation) == []
        result = fleet.carry([rule_packet(i) for i in range(8)])
        assert result.allowed == 4 and result.dropped_filtered == 4
        assert result.dropped_failclosed == 0
        assert fleet.counters.unfiltered_packets == 0

    def test_deploy_rejects_empty_and_mismatched_input(self):
        controller = IXPController(IASService())
        fleet = FleetManager(controller)
        with pytest.raises(ConfigurationError, match="at least one rule"):
            fleet.deploy(RuleSet())
        with pytest.raises(ConfigurationError, match="do not match"):
            fleet.deploy(build_rules(4), bandwidths=[1.0])

    def test_ping_heartbeat_is_a_cheap_counter_ecall(self):
        fleet = build_fleet(build_rules(), enclaves=2)
        enclave = fleet.controller.enclaves[0]
        assert enclave.ecall("ping") == 1
        assert enclave.ecall("ping") == 2

    def test_probe_all_healthy(self):
        fleet = build_fleet(build_rules(), enclaves=3)
        assert fleet.probe() == [EnclaveHealth.HEALTHY] * 3
        assert fleet.counters.probes == 3
        assert fleet.counters.probe_misses == 0

    def test_probe_suspect_then_dead_at_miss_threshold(self):
        fleet = build_fleet(
            build_rules(), enclaves=3, config=FleetConfig(miss_threshold=2)
        )
        fleet.controller.enclaves[1].destroy()
        assert fleet.probe()[1] is EnclaveHealth.SUSPECT
        assert fleet.probe()[1] is EnclaveHealth.DEAD
        # dead slots are no longer probed
        probes_before = fleet.counters.probes
        fleet.probe()
        assert fleet.counters.probes == probes_before + 2

    def test_transient_probe_miss_recovers_to_healthy(self, monkeypatch):
        fleet = build_fleet(
            build_rules(), enclaves=2, config=FleetConfig(miss_threshold=2)
        )
        enclave = fleet.controller.enclaves[0]
        original = enclave.ecall
        state = {"failed": False}

        def flaky(name, *args):
            if name == "ping" and not state["failed"]:
                state["failed"] = True
                raise EnclaveSealedError("transient probe loss")
            return original(name, *args)

        monkeypatch.setattr(enclave, "ecall", flaky)
        assert fleet.probe()[0] is EnclaveHealth.SUSPECT
        assert fleet.probe()[0] is EnclaveHealth.HEALTHY
        # a SUSPECT slot that recovers is never put through failover
        assert fleet.recover().acted is False


class TestFailover:
    def test_crash_recovery_relaunches_and_reinstalls(self):
        rules = build_rules()
        fleet = build_fleet(rules, enclaves=4)
        victim_slot = 1
        installed_before = {
            r.rule_id
            for r in fleet.controller.enclaves[victim_slot].ecall("installed_rules")
        }
        fleet.inject_crash(victim_slot)
        fleet.probe(), fleet.probe()
        report = fleet.recover()
        assert report.relaunched_slots == [victim_slot]
        assert not report.orphaned_slots
        replacement = fleet.controller.enclaves[victim_slot]
        assert not replacement.destroyed
        installed_after = {
            r.rule_id for r in replacement.ecall("installed_rules")
        }
        assert installed_after == installed_before
        assert fleet.counters.relaunches == 1
        assert fleet.counters.failovers == 1
        assert validate_allocation(fleet.allocation) == []
        result = fleet.carry([rule_packet(i) for i in range(8)])
        assert result.dropped_failclosed == 0
        assert fleet.counters.unfiltered_packets == 0

    def test_data_path_discovers_death_and_fails_closed(self):
        rules = build_rules()
        fleet = build_fleet(rules, enclaves=4)
        fleet.inject_crash(0)  # no probe round: data path finds out first
        packets = [rule_packet(i) for i in range(8)]
        result = fleet.carry(packets)
        assert result.dropped_failclosed > 0
        assert len(result.delivered) + result.dropped_filtered \
            + result.dropped_failclosed == len(packets)
        assert fleet.counters.unfiltered_packets == 0
        # the death was flagged for recovery without any probe
        report = fleet.recover()
        assert report.relaunched_slots
        assert fleet.carry(packets).dropped_failclosed == 0

    def test_platform_loss_recovers_onto_spare(self):
        fleet = build_fleet(
            build_rules(), enclaves=3, config=FleetConfig(spare_platforms=1)
        )
        old_platform = fleet.controller.enclaves[2].platform.platform_id
        fleet.inject_crash(2, platform_lost=True)
        report = fleet.recover()
        assert report.relaunched_slots == [2]
        new_platform = fleet.controller.enclaves[2].platform.platform_id
        assert new_platform != old_platform
        assert new_platform.startswith("ixp-spare-")

    def test_platform_loss_without_spares_repairs_allocation(self):
        rules = build_rules()
        fleet = build_fleet(
            rules, enclaves=4, config=FleetConfig(spare_platforms=0)
        )
        fleet.inject_crash(3, platform_lost=True)
        report = fleet.recover()
        assert report.orphaned_slots == [3]
        assert report.repaired
        assert report.rules_rehomed > 0
        assert fleet.counters.repairs == 1
        assert fleet.counters.relaunches == 0
        assert validate_allocation(fleet.allocation) == []
        # orphaned slot holds nothing; survivors serve everything
        assert fleet.allocation.assignments[3] == {}
        result = fleet.carry([rule_packet(i) for i in range(8)])
        assert result.dropped_failclosed == 0
        assert fleet.counters.unfiltered_packets == 0

    def test_epc_exhaustion_forces_orphan_path(self):
        fleet = build_fleet(
            build_rules(), enclaves=4, config=FleetConfig(spare_platforms=0)
        )
        fleet.inject_epc_exhaustion(1)
        report = fleet.recover()
        assert report.orphaned_slots == [1]
        assert report.repaired
        assert fleet.counters.unfiltered_packets == 0

    def test_inject_on_empty_fleet_raises(self):
        fleet = FleetManager(IXPController(IASService()))
        with pytest.raises(FleetError, match="empty"):
            fleet.inject_crash(0)


class TestGracefulDegradation:
    def tight_fleet(self, priorities=None, spares=0):
        """Two enclaves at 100% utilisation: losing one forces shedding."""
        rules = build_rules(count=4, rate_bps=5.0 * GBPS)  # 20G over 2x10G
        fleet = build_fleet(
            rules,
            enclaves=2,
            config=FleetConfig(spare_platforms=spares),
            priorities=priorities,
        )
        return fleet

    def test_capacity_loss_sheds_fail_closed(self):
        fleet = self.tight_fleet()
        fleet.inject_crash(0, platform_lost=True)
        report = fleet.recover()
        assert report.full_resolve
        assert report.shed_rule_ids  # survivors cannot hold 20G
        assert report.shed_bandwidth_bps > 0
        assert fleet.counters.rules_shed == len(report.shed_rule_ids)
        assert fleet.shed_rule_ids == set(report.shed_rule_ids)
        lb = fleet.controller.load_balancer
        assert fleet.shed_rule_ids <= lb.blackholed_rule_ids

        packets = [rule_packet(i) for i in range(4)]
        result = fleet.carry(packets)
        # shed-rule traffic is dropped at the balancer, never delivered
        assert result.dropped_shed > 0
        assert fleet.counters.unfiltered_packets == 0
        delivered_dsts = {p.five_tuple.dst_ip for p in result.delivered}
        for rid in report.shed_rule_ids:
            assert f"203.0.{99 + rid}.5" not in delivered_dsts

    def test_shed_order_respects_priorities(self):
        # rule 1 is precious; the sheds must come from the others
        fleet = self.tight_fleet(priorities={1: 10})
        fleet.inject_crash(1, platform_lost=True)
        report = fleet.recover()
        assert report.shed_rule_ids
        assert 1 not in report.shed_rule_ids

    def test_surviving_rules_still_filter_after_shed(self):
        fleet = self.tight_fleet()
        fleet.inject_crash(0, platform_lost=True)
        fleet.recover()
        assert validate_allocation(fleet.allocation) == []
        kept = set(fleet.active_rule_ids)
        assert kept and kept.isdisjoint(fleet.shed_rule_ids)
        result = fleet.carry([rule_packet(rid - 1) for rid in sorted(kept)])
        assert result.allowed + result.dropped_filtered == len(kept)


class TestAttestationRetry:
    def attested_fleet(self, ias, config=None):
        rules = build_rules()
        controller = IXPController(ias)
        fleet = FleetManager(controller, config=config)
        fleet.deploy(rules, enclaves_override=3)
        rpki = RPKIRegistry()
        rpki.authorize(VICTIM, "203.0.0.0/16")
        session = VIFSession(VICTIM, rpki, ias, controller)
        session.attest_filters()
        fleet.session = session
        return fleet

    def test_recovery_rides_out_transient_ias_outage(self):
        ias = FlakyIAS()
        fleet = self.attested_fleet(ias)
        fleet.inject_crash(0)
        ias.fail_next(2)
        report = fleet.recover()
        assert report.relaunched_slots == [0]
        assert fleet.counters.attestation_retries == 2
        assert ias.outage_remaining == 0
        # replacement was re-attested: the session holds a fresh report
        assert 0 in fleet.session.attestation_reports
        assert fleet.counters.recovery_time_s > 3.0  # paper-scale attestation

    def test_recovery_failed_after_retry_budget(self):
        ias = FlakyIAS()
        fleet = self.attested_fleet(
            ias, config=FleetConfig(max_attestation_attempts=3)
        )
        fleet.inject_crash(1)
        ias.fail_next(100)
        with pytest.raises(RecoveryFailed, match="after 3 attempts"):
            fleet.recover()
        assert fleet.counters.attestation_retries == 3
        # traffic for the un-attested slot still fails closed
        result = fleet.carry([rule_packet(i) for i in range(8)])
        assert fleet.counters.unfiltered_packets == 0

    def test_backoff_is_deterministic_per_seed(self):
        times = []
        for _ in range(2):
            ias = FlakyIAS()
            fleet = self.attested_fleet(
                ias, config=FleetConfig(seed="backoff-test")
            )
            fleet.inject_crash(0)
            ias.fail_next(3)
            fleet.recover()
            times.append(fleet.counters.recovery_time_s)
        assert times[0] == times[1]
