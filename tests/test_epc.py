"""EPC accounting."""

import pytest

from repro.errors import EnclaveMemoryError
from repro.tee.epc import DEFAULT_EPC_LIMIT, EPCAccounting
from repro.util.units import MB


def test_default_limit_is_92mb():
    assert DEFAULT_EPC_LIMIT == 92 * MB


def test_allocate_and_free():
    epc = EPCAccounting()
    epc.allocate("table", 10 * MB)
    epc.allocate("table", 5 * MB)  # accumulates under the label
    assert epc.used == 15 * MB
    epc.free("table")
    assert epc.used == 0


def test_resize_sets_absolute():
    epc = EPCAccounting()
    epc.allocate("x", 10 * MB)
    epc.resize("x", 3 * MB)
    assert epc.used == 3 * MB


def test_paging_turns_on_past_epc_limit():
    epc = EPCAccounting(epc_limit_bytes=10 * MB, hard_limit_bytes=100 * MB)
    epc.allocate("a", 10 * MB)
    assert not epc.paging
    assert epc.paging_pressure() == 0.0
    epc.allocate("b", 5 * MB)
    assert epc.paging
    assert epc.paging_pressure() == pytest.approx(0.5)


def test_hard_limit_enforced():
    epc = EPCAccounting(epc_limit_bytes=10 * MB, hard_limit_bytes=20 * MB)
    epc.allocate("a", 15 * MB)
    with pytest.raises(EnclaveMemoryError):
        epc.allocate("b", 10 * MB)
    with pytest.raises(EnclaveMemoryError):
        epc.resize("a", 25 * MB)
    assert epc.used == 15 * MB  # failed ops leave state intact


def test_peak_tracking():
    epc = EPCAccounting()
    epc.allocate("a", 8 * MB)
    epc.free("a")
    epc.allocate("b", 2 * MB)
    assert epc.peak == 8 * MB


def test_breakdown():
    epc = EPCAccounting()
    epc.allocate("sketches", 2 * MB)
    epc.allocate("table", 1 * MB)
    assert epc.breakdown() == {"sketches": 2 * MB, "table": 1 * MB}


def test_validation():
    with pytest.raises(ValueError):
        EPCAccounting(epc_limit_bytes=0)
    with pytest.raises(ValueError):
        EPCAccounting(epc_limit_bytes=10, hard_limit_bytes=5)
    epc = EPCAccounting()
    with pytest.raises(ValueError):
        epc.allocate("x", -1)
    with pytest.raises(ValueError):
        epc.resize("x", -1)
