"""Enclave isolation semantics."""

import pytest

from repro.errors import EnclaveError, EnclaveSealedError
from repro.tee.enclave import Enclave, EnclaveProgram, Platform


class CounterProgram(EnclaveProgram):
    """Minimal program: isolated counter plus an OCall passthrough."""

    VERSION = "counter-1"

    def __init__(self):
        super().__init__()
        self._count = 0

    def on_load(self, enclave):
        super().on_load(enclave)
        self.register_ecall("bump", self.bump)
        self.register_ecall("value", lambda: self._count)
        self.register_ecall("ask_host", lambda q: self.ocall("answer", q))

    def bump(self):
        self._count += 1
        return self._count


def launch():
    platform = Platform("server-1")
    program = CounterProgram()
    return platform.launch(program), program, platform


def test_ecall_dispatch_and_state_isolation():
    enclave, _, _ = launch()
    assert enclave.ecall("bump") == 1
    assert enclave.ecall("bump") == 2
    assert enclave.ecall("value") == 2
    assert enclave.ecall_count == 3


def test_unknown_ecall_rejected():
    enclave, _, _ = launch()
    with pytest.raises(EnclaveError):
        enclave.ecall("nope")


def test_ocall_roundtrip_and_counting():
    enclave, _, _ = launch()
    enclave.register_ocall_handler("answer", lambda q: q.upper())
    assert enclave.ecall("ask_host", "hi") == "HI"
    assert enclave.ocall_count == 1


def test_ocall_without_handler_fails():
    enclave, _, _ = launch()
    with pytest.raises(EnclaveError):
        enclave.ecall("ask_host", "hi")


def test_destroyed_enclave_rejects_everything():
    enclave, _, _ = launch()
    enclave.destroy()
    assert enclave.destroyed
    with pytest.raises(EnclaveSealedError):
        enclave.ecall("bump")


def test_destroy_is_idempotent():
    # failover paths destroy defensively; a second destroy must be a no-op
    enclave, _, _ = launch()
    enclave.destroy()
    epc_after_first = enclave.epc.used
    enclave.destroy()
    assert enclave.destroyed
    assert enclave.epc.used == epc_after_first


def test_sealed_error_identifies_the_enclave():
    enclave, _, _ = launch()
    enclave.destroy()
    with pytest.raises(EnclaveSealedError) as excinfo:
        enclave.ecall("bump")
    message = str(excinfo.value)
    assert enclave.enclave_id in message
    assert enclave.platform.platform_id in message
    assert enclave.measurement()[:16] in message


def test_measurement_depends_on_code_not_instance():
    e1, _, _ = launch()
    e2, _, _ = launch()
    assert e1.measurement() == e2.measurement()

    class OtherProgram(CounterProgram):
        VERSION = "counter-2"

    other = Platform("p").launch(OtherProgram())
    assert other.measurement() != e1.measurement()


def test_duplicate_ecall_registration_rejected():
    class BadProgram(EnclaveProgram):
        def on_load(self, enclave):
            super().on_load(enclave)
            self.register_ecall("x", lambda: 1)
            self.register_ecall("x", lambda: 2)

    with pytest.raises(EnclaveError):
        Platform("p").launch(BadProgram())


def test_program_requires_loading():
    program = CounterProgram()
    with pytest.raises(EnclaveError):
        _ = program.enclave


def test_platform_launch_ids_unique():
    platform = Platform("srv")
    a = platform.launch(CounterProgram())
    b = platform.launch(CounterProgram())
    assert a.enclave_id != b.enclave_id


def test_base_epc_charged_for_filter_program():
    from repro.core.enclave_filter import EnclaveFilter

    platform = Platform("srv")
    enclave = platform.launch(EnclaveFilter(secret="s"))
    assert enclave.epc.used > 0
