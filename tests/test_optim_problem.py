"""Problem/Allocation types for the Appendix C optimization."""

import math

import pytest

from repro.errors import ConfigurationError, InfeasibleError
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.util.units import GBPS, MB


def problem(bandwidths, **kw):
    return RuleDistributionProblem(bandwidths=bandwidths, **kw)


def test_min_enclaves_bandwidth_bound():
    # 25 Gb/s over 10 Gb/s enclaves -> at least 3.
    p = problem([12.5 * GBPS, 12.5 * GBPS])
    assert p.min_enclaves == 3


def test_min_enclaves_memory_bound():
    p = problem(
        [1.0] * 100,
        memory_budget=10 * MB,
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,
    )
    # 100 rules / 9 per enclave -> 12.
    assert p.min_enclaves == math.ceil(100 / 9)


def test_headroom_inflates_enclaves():
    p0 = problem([30 * GBPS], headroom=0.0)
    p1 = problem([30 * GBPS], headroom=0.5)
    assert p0.num_enclaves == 3
    assert p1.num_enclaves == 5  # ceil(3 * 1.5)


def test_rule_capacity_per_enclave():
    p = problem([1.0], memory_budget=10 * MB, bytes_per_rule=1 * MB, base_bytes=1 * MB)
    assert p.rule_capacity_per_enclave == 9


def test_memory_cost_linear():
    p = problem([1.0])
    assert p.memory_cost(0) == p.base_bytes
    assert p.memory_cost(10) == p.base_bytes + 10 * p.bytes_per_rule


def test_validation():
    with pytest.raises(ConfigurationError):
        problem([])
    with pytest.raises(ConfigurationError):
        problem([-1.0])
    with pytest.raises(ConfigurationError):
        problem([1.0], enclave_bandwidth=0)
    with pytest.raises(ConfigurationError):
        problem([1.0], headroom=-0.1)
    with pytest.raises(ConfigurationError):
        problem([1.0], memory_budget=1, base_bytes=2)


def test_validation_rejects_non_finite_bandwidths():
    """NaN passes every `< 0` / `> 0` filter, so without an explicit check a
    NaN-bandwidth rule silently vanishes from the greedy packing."""
    with pytest.raises(ConfigurationError, match="non-finite"):
        problem([1.0, float("nan")])
    with pytest.raises(ConfigurationError, match="non-finite"):
        problem([float("inf")])
    with pytest.raises(ConfigurationError, match="non-finite"):
        problem([1.0, float("-inf")])


def test_validation_error_names_offending_rule():
    with pytest.raises(ConfigurationError, match="rule 2"):
        problem([1.0, 2.0, -3.0])


def test_check_feasible():
    problem([1 * GBPS]).check_feasible()
    tight = problem([1.0], memory_budget=2 * MB, bytes_per_rule=4 * MB,
                    base_bytes=1 * MB)
    with pytest.raises(InfeasibleError):
        tight.check_feasible()


def test_allocation_accessors():
    p = problem([4.0, 6.0], enclave_bandwidth=10.0, headroom=0.0)
    alloc = Allocation(problem=p, assignments=[{0: 4.0, 1: 2.0}, {1: 4.0}])
    assert alloc.rules_on(0) == [0, 1]
    assert alloc.bandwidth_on(0) == pytest.approx(6.0)
    assert alloc.bandwidth_on(1) == pytest.approx(4.0)
    assert alloc.memory_on(0) == p.memory_cost(2)
    assert alloc.rule_replicas(1) == [0, 1]
    assert alloc.num_enclaves_used == 2


def test_allocation_objective():
    p = problem([4.0, 6.0], enclave_bandwidth=10.0, alpha=0.0, headroom=0.0)
    alloc = Allocation(problem=p, assignments=[{0: 4.0}, {1: 6.0}])
    assert alloc.objective() == pytest.approx(6.0)  # max I_j with alpha=0
    assert Allocation(problem=p).objective() == 0.0
