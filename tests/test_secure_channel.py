"""The victim<->enclave secure channel: a hostile host cannot tamper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SecureChannelError
from repro.tee.secure_channel import (
    ChannelEndpoint,
    SecureChannel,
    establish_pair,
)


def test_roundtrip():
    client, server, _, _ = establish_pair("c", "s")
    record = client.seal(b"install rule 1")
    assert server.open(record) == b"install rule 1"
    reply = server.seal(b"ack")
    assert client.open(reply) == b"ack"


def test_both_sides_derive_same_key():
    a = ChannelEndpoint.create("a", "seed-1")
    b = ChannelEndpoint.create("b", "seed-2")
    assert a.shared_key(b.public) == b.shared_key(a.public)


def test_different_sessions_have_different_keys():
    a1 = ChannelEndpoint.create("a", "s1")
    b1 = ChannelEndpoint.create("b", "s1b")
    a2 = ChannelEndpoint.create("a", "s2")
    assert a1.shared_key(b1.public) != a2.shared_key(b1.public)


def test_ciphertext_hides_plaintext():
    client, _, _, _ = establish_pair("c", "s")
    record = client.seal(b"SECRET-RULE-PAYLOAD")
    assert b"SECRET-RULE-PAYLOAD" not in record


def test_tampered_record_rejected():
    client, server, _, _ = establish_pair("c", "s")
    record = bytearray(client.seal(b"hello"))
    record[14] ^= 0xFF  # flip a ciphertext bit
    with pytest.raises(SecureChannelError, match="authentication"):
        server.open(bytes(record))


def test_truncated_record_rejected():
    client, server, _, _ = establish_pair("c", "s")
    record = client.seal(b"hello")
    with pytest.raises(SecureChannelError):
        server.open(record[: len(record) // 2])
    with pytest.raises(SecureChannelError):
        server.open(b"")


def test_replay_rejected():
    client, server, _, _ = establish_pair("c", "s")
    record = client.seal(b"one")
    assert server.open(record) == b"one"
    with pytest.raises(SecureChannelError, match="replayed"):
        server.open(record)


def test_reorder_rejected():
    client, server, _, _ = establish_pair("c", "s")
    first = client.seal(b"one")
    second = client.seal(b"two")
    with pytest.raises(SecureChannelError, match="replayed or reordered"):
        server.open(second)
    assert server.open(first) == b"one"


def test_reflected_record_rejected():
    """A record sealed by the client cannot be passed back to the client."""
    client, _, _, _ = establish_pair("c", "s")
    record = client.seal(b"x")
    with pytest.raises(SecureChannelError):
        client.open(record)


def test_bad_peer_public_rejected():
    endpoint = ChannelEndpoint.create("a", "seed")
    with pytest.raises(SecureChannelError):
        endpoint.shared_key(0)
    with pytest.raises(SecureChannelError):
        endpoint.shared_key(1)


def test_channel_construction_validation():
    with pytest.raises(SecureChannelError):
        SecureChannel(b"short-key", "client")
    with pytest.raises(SecureChannelError):
        SecureChannel(b"k" * 32, "observer")


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_arbitrary_payloads(payload):
    client, server, _, _ = establish_pair("c", "s")
    assert server.open(client.seal(payload)) == payload


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=256), st.integers(min_value=0, max_value=2000))
def test_any_single_bitflip_detected(payload, position):
    client, server, _, _ = establish_pair("c", "s")
    record = bytearray(client.seal(payload))
    record[position % len(record)] ^= 0x01
    with pytest.raises(SecureChannelError):
        server.open(bytes(record))
