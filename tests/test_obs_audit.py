"""The audit timeline: divergence scoring, normalization, debounce, flight."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.bypass import VictimAuditor
from repro.obs.audit import (
    ALERT_BYPASS,
    ALERT_FAMILY_MISMATCH,
    ALERT_INJECTION,
    AuditTimeline,
)
from repro.obs.events import EventJournal
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.sketch.bounds import ErrorBound
from repro.sketch.countmin import CountMinSketch
from tests.conftest import make_packet


@pytest.fixture
def obs_env():
    """Fresh registry + enabled journal + enabled flight ring, restored."""
    prev_registry = obs.set_registry(MetricsRegistry())
    prev_journal = obs.set_journal(EventJournal(enabled=True))
    prev_recorder = obs.set_flight_recorder(FlightRecorder(capacity=8, enabled=True))
    yield
    obs.set_registry(prev_registry)
    obs.set_journal(prev_journal)
    obs.set_flight_recorder(prev_recorder)


def evidence(missing=0, extra=0):
    """Synthesize BypassEvidence via a real auditor over real sketches."""
    auditor = VictimAuditor("victim.example")
    local = auditor.local_log.sketch
    enclave = CountMinSketch(local.depth, local.width, "vif/out")
    # Shared traffic both sides saw.
    for i in range(10):
        packet = make_packet(src_port=7000 + i)
        enclave.update(packet.five_tuple.key())
        auditor.observe(packet)
    dropped = make_packet(src_port=6000)
    if missing:
        enclave.update(dropped.five_tuple.key(), missing)  # never delivered
    if extra:
        injected = make_packet(src_port=5000)
        for _ in range(extra):
            auditor.observe(injected)  # enclave never logged it
    return auditor.audit(enclave)


def test_clean_round_scores_zero(obs_env):
    timeline = AuditTimeline()
    score, alerts = timeline.record(1, evidence())
    assert alerts == []
    assert not score.suspicious
    assert score.l1 == score.l_inf == 0
    assert score.normalized_l1 == 0.0


def test_divergence_normalized_by_cm_error_budget(obs_env):
    timeline = AuditTimeline()
    score, _ = timeline.record(1, evidence(missing=6))
    ev = evidence(missing=6)
    bound = ErrorBound(width=ev.comparison.width, depth=ev.comparison.depth)
    n = max(ev.comparison.enclave_total, ev.comparison.observer_total)
    expected_budget = max(bound.max_overcount(n), 1.0)
    assert score.error_budget == pytest.approx(expected_budget)
    assert score.normalized_l1 == pytest.approx(score.l1 / expected_budget)
    assert score.l_inf >= 6  # the dropped flow's bins disagree by >= 6
    assert score.missing == 6


def test_default_debounce_fires_on_first_suspect_round(obs_env):
    timeline = AuditTimeline()
    _, alerts = timeline.record(1, evidence(missing=4))
    assert [a.kind for a in alerts] == [ALERT_BYPASS]
    assert alerts[0].round_id == 1


def test_debounce_two_requires_consecutive_suspect_rounds(obs_env):
    timeline = AuditTimeline(debounce=2)
    # One noisy round: no alert.
    _, alerts = timeline.record(1, evidence(missing=4))
    assert alerts == []
    # A clean round resets the streak.
    timeline.record(2, evidence())
    _, alerts = timeline.record(3, evidence(missing=4))
    assert alerts == []
    # Two consecutive suspect rounds: alert on the second.
    _, alerts = timeline.record(4, evidence(missing=4))
    assert [a.kind for a in alerts] == [ALERT_BYPASS]
    assert alerts[0].round_id == 4


def test_injection_and_drop_alert_independently(obs_env):
    timeline = AuditTimeline()
    _, alerts = timeline.record(1, evidence(missing=3, extra=5))
    assert {a.kind for a in alerts} == {ALERT_BYPASS, ALERT_INJECTION}


def test_metrics_exported_per_round(obs_env):
    timeline = AuditTimeline(session_id="victim.example")
    timeline.record(1, evidence())
    timeline.record(2, evidence(missing=4))
    registry = obs.get_registry()
    assert registry.total("vif_audit_rounds_total") == 2
    assert registry.total("vif_audit_alerts_total") == 1
    labels = {"observer": "victim:victim.example", "session": "victim.example"}
    assert registry.get("vif_audit_divergence_l1", **labels).value >= 4
    hist = registry.get("vif_audit_divergence_ratio", **labels)
    assert hist.count == 2


def test_journal_gets_audit_alert_and_evidence_events(obs_env):
    timeline = AuditTimeline(session_id="victim.example")
    timeline.record(1, evidence())
    timeline.record(2, evidence(missing=4))
    journal = obs.get_journal()
    audits = journal.of_type("sketch_audit")
    assert [e.round_id for e in audits] == [1, 2]
    assert audits[0].payload["bins_flagged"] == 0
    assert audits[1].payload["missing"] == 4
    alerts = journal.of_type("alert")
    assert len(alerts) == 1 and alerts[0].payload["kind"] == ALERT_BYPASS
    bypass = journal.of_type("bypass_evidence")
    assert len(bypass) == 1
    assert bypass[0].round_id == 2
    assert bypass[0].payload["alerts"] == [ALERT_BYPASS]
    assert bypass[0].payload["suspected_attacks"] == ["drop-after-filtering"]


def test_bypass_evidence_embeds_confined_flight_dump(obs_env):
    recorder = obs.get_flight_recorder()
    # Ring capacity is 8; write 12 entries across rounds 1..3 — including
    # round-3 entries that postdate the alert and must not appear.
    for i in range(6):
        recorder.record(f"flow-{i}", 1, "allowed", 1)
    for i in range(3):
        recorder.record(f"flow-late-{i}", 2, "dropped", 2)
    for i in range(3):
        recorder.record(f"flow-future-{i}", 3, "allowed", 3)

    timeline = AuditTimeline()
    timeline.record(2, evidence(missing=4))
    dump = obs.get_journal().of_type("bypass_evidence")[0].payload["flight"]
    assert 0 < len(dump) <= recorder.capacity
    assert all(row["round"] <= 2 for row in dump)
    assert not any(row["flow"].startswith("flow-future") for row in dump)


def test_family_mismatch_fires_immediately_even_with_debounce(obs_env):
    timeline = AuditTimeline(debounce=5)
    alert = timeline.record_family_mismatch(
        3, ValueError("derivation v1 vs v2"), observer="victim:v"
    )
    assert alert.kind == ALERT_FAMILY_MISMATCH
    assert timeline.alerts == [alert]
    assert obs.get_registry().total("vif_audit_alerts_total") == 1


def test_debounce_validation():
    with pytest.raises(ValueError, match="debounce"):
        AuditTimeline(debounce=0)


def test_flight_recorder_ring_is_bounded():
    recorder = FlightRecorder(capacity=4, enabled=True)
    for i in range(10):
        recorder.record(f"flow-{i}", None, "allowed", i)
    assert len(recorder) == 4
    assert [row["flow"] for row in recorder.dump()] == [
        "flow-6", "flow-7", "flow-8", "flow-9"
    ]
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
