"""Controller/session corner cases around reconfiguration and lifecycle."""

import pytest

from repro.core.controller import IXPController
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.core.session import SessionState
from repro.errors import SessionError
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.tee.attestation import IASService
from repro.util.units import GBPS
from tests.conftest import VICTIM_PREFIX, make_packet


def rule(rule_id, prefix):
    return FilterRule(
        rule_id=rule_id, pattern=FlowPattern(dst_prefix=prefix),
        action=Action.ALLOW,
    )


def test_retired_enclaves_are_destroyed():
    controller = IXPController(IASService())
    controller.launch_filters(3)
    victims = controller.enclaves[1:]
    controller.retire_filters(2)
    assert all(e.destroyed for e in victims)
    assert len(controller.enclaves) == len(controller.programs) == 1


def test_lb_reconfigure_replaces_stale_routes():
    controller = IXPController(IASService())
    controller.launch_filters(1)
    controller.install_single_filter(RuleSet([rule(1, "10.1.0.0/16")]))
    assert controller.load_balancer.route(make_packet(dst_ip="10.1.0.5")) == 0
    # Re-install with a different rule: the old route must vanish.
    controller.install_single_filter(RuleSet([rule(2, "10.2.0.0/16")]))
    assert controller.load_balancer.route(make_packet(dst_ip="10.1.0.5")) is None
    assert controller.load_balancer.route(make_packet(dst_ip="10.2.0.5")) == 0


def test_apply_allocation_shrinks_fleet():
    controller = IXPController(IASService())
    controller.launch_filters(4)
    rules = RuleSet([rule(1, "10.1.0.0/16")])
    problem = RuleDistributionProblem(bandwidths=[1 * GBPS], headroom=0.0)
    allocation = Allocation(problem=problem, assignments=[{0: 1 * GBPS}])
    controller.apply_allocation(rules, allocation)
    assert len(controller.enclaves) == 1


def test_single_enclave_allocation_disables_misbehavior_checks():
    controller = IXPController(IASService())
    controller.launch_filters(2)
    rules = RuleSet([rule(1, "10.1.0.0/16")])
    problem = RuleDistributionProblem(bandwidths=[1 * GBPS], headroom=0.0)
    controller.apply_allocation(
        rules, Allocation(problem=problem, assignments=[{0: 1 * GBPS}])
    )
    # Unmatched traffic through the lone enclave is not "misbehavior".
    controller.enclaves[0].ecall("process_packet", make_packet(dst_ip="192.0.2.1"))
    assert controller.misbehavior_reports() == []


def test_session_closed_state_blocks_operations(session):
    session.submit_rules(
        [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
                    p_allow=1.0, requested_by="victim.example")]
    )
    session.close()
    assert session.state is SessionState.CLOSED
    with pytest.raises(SessionError):
        session.audit_round()
    with pytest.raises(SessionError):
        session.submit_rules([])


def test_fetch_log_requires_active_session(rpki, ias):
    from repro.core.session import VIFSession

    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession("victim.example", rpki, ias, controller)
    session.attest_filters()
    with pytest.raises(SessionError):
        session.fetch_outgoing_log(0)  # ATTESTED, not yet ACTIVE
