"""Remote attestation with the simulated IAS (paper II-C, Appendix G)."""

import pytest

from repro.core.enclave_filter import EnclaveFilter
from repro.errors import AttestationError
from repro.tee.attestation import (
    AttestationTimingModel,
    IASService,
    PAPER_ATTESTATION_TIMING,
    RemoteAttestationVerifier,
    generate_quote,
)
from repro.tee.enclave import Platform


def setup():
    ias = IASService()
    platform = Platform("srv-1")
    ias.provision(platform)
    enclave = platform.launch(EnclaveFilter(secret="s"))
    verifier = RemoteAttestationVerifier(ias, EnclaveFilter.measurement())
    return ias, platform, enclave, verifier


def test_happy_path():
    _, _, enclave, verifier = setup()
    report = verifier.attest(enclave)
    assert report.ok
    assert report.quote.measurement == EnclaveFilter.measurement()


def test_report_data_binding():
    _, _, enclave, verifier = setup()
    payload = enclave.ecall("channel_public")
    report = verifier.attest(enclave, report_data=payload)
    assert report.quote.report_data == payload


def test_unprovisioned_platform_rejected():
    ias = IASService()
    platform = Platform("rogue")  # never provisioned
    enclave = platform.launch(EnclaveFilter(secret="s"))
    verifier = RemoteAttestationVerifier(ias, EnclaveFilter.measurement())
    with pytest.raises(AttestationError, match="rejected"):
        verifier.attest(enclave)


def test_wrong_code_measurement_rejected():
    """The core guarantee: different code => attestation fails."""

    class BackdooredFilter(EnclaveFilter):
        VERSION = "vif-filter-1.0-evil"

    ias = IASService()
    platform = Platform("srv")
    ias.provision(platform)
    evil = platform.launch(BackdooredFilter(secret="s"))
    verifier = RemoteAttestationVerifier(ias, EnclaveFilter.measurement())
    with pytest.raises(AttestationError, match="measurement mismatch"):
        verifier.attest(evil)


def test_forged_quote_signature_rejected():
    ias, platform, enclave, verifier = setup()
    nonce = verifier.challenge()
    quote = generate_quote(enclave, nonce)
    forged = type(quote)(
        platform_id=quote.platform_id,
        enclave_id=quote.enclave_id,
        measurement=quote.measurement,
        nonce=quote.nonce,
        report_data=quote.report_data,
        signature=b"\x00" * 32,
    )
    report = ias.verify_quote(forged)
    assert not report.ok
    with pytest.raises(AttestationError):
        verifier.validate_report(report, nonce)


def test_report_from_wrong_ias_rejected():
    _, _, enclave, verifier = setup()
    other_ias = IASService("evil-ias")
    other_platform = Platform("srv-1")  # same id, same key derivation
    other_ias.provision(other_platform)
    nonce = verifier.challenge()
    quote = generate_quote(enclave, nonce)
    foreign_report = other_ias.verify_quote(quote)
    with pytest.raises(AttestationError, match="signature invalid"):
        verifier.validate_report(foreign_report, nonce)


def test_nonce_replay_rejected():
    _, _, enclave, verifier = setup()
    nonce = verifier.challenge()
    quote = generate_quote(enclave, nonce)
    report = verifier._ias.verify_quote(quote)
    fresh_nonce = verifier.challenge()
    with pytest.raises(AttestationError, match="nonce"):
        verifier.validate_report(report, fresh_nonce)


def test_report_data_mismatch_rejected():
    _, _, enclave, verifier = setup()
    nonce = verifier.challenge()
    quote = generate_quote(enclave, nonce, report_data=b"A")
    report = verifier._ias.verify_quote(quote)
    with pytest.raises(AttestationError, match="channel binding"):
        verifier.validate_report(report, nonce, expected_report_data=b"B")


def test_nonces_are_unique():
    _, _, _, verifier = setup()
    assert verifier.challenge() != verifier.challenge()


def test_timing_model_matches_appendix_g():
    # "the platform takes 28.8 milliseconds and the total end-to-end
    # latency of 3.04 seconds"
    assert PAPER_ATTESTATION_TIMING.platform_work_s == pytest.approx(0.0288)
    assert PAPER_ATTESTATION_TIMING.end_to_end_s() == pytest.approx(3.04, abs=0.05)


def test_timing_model_decomposition():
    t = AttestationTimingModel(
        platform_work_s=0.01,
        verifier_enclave_rtt_s=0.0,
        ias_rtt_s=0.0,
        ias_tls_handshake_rtts=0,
        verifier_processing_s=0.0,
    )
    assert t.end_to_end_s() == pytest.approx(0.01)
