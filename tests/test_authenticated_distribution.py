"""The authenticated Fig 5 round: rule re-calc inside the master enclave,
with end-to-end integrity against the ferrying controller."""

import json

import pytest

from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rules import FilterRule, FlowPattern, RuleSet
from repro.core.session import VIFSession
from repro.core.rules import RPKIRegistry
from repro.errors import DistributionError, SecureChannelError
from repro.tee.attestation import IASService
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet


def rule(rule_id, prefix):
    return FilterRule(
        rule_id=rule_id, pattern=FlowPattern(dst_prefix=prefix), p_allow=1.0,
        requested_by=VICTIM,
    )


def stand_up(num_rules=8, packets_per_rule=4):
    controller = IXPController(IASService())
    controller.launch_filters(1)
    rules = RuleSet(rule(i, f"10.{i}.0.0/16") for i in range(1, num_rules + 1))
    controller.install_single_filter(rules)
    for i in range(1, num_rules + 1):
        for j in range(packets_per_rule):
            controller.carry([make_packet(dst_ip=f"10.{i}.0.{j + 1}", size=1000)])
    return controller, rules


def test_authenticated_round_matches_plain_round_semantics():
    controller, rules = stand_up()
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=20_000.0)
    record = protocol.run_round_authenticated(window_s=1.0)
    # Every rule still installed somewhere, traffic still flows.
    installed = set()
    for enclave in controller.enclaves:
        installed |= {r.rule_id for r in enclave.ecall("installed_rules")}
    assert installed == {r.rule_id for r in rules}
    assert record.num_enclaves_after == len(controller.enclaves) > 1
    delivered = controller.carry(
        [make_packet(dst_ip=f"10.{i}.0.9") for i in range(1, 9)]
    )
    assert len(delivered) == 8  # p_allow=1.0 rules
    assert controller.misbehavior_reports() == []


def test_authenticated_round_rates_from_byte_counts():
    controller, _ = stand_up(num_rules=3, packets_per_rule=5)
    protocol = RuleDistributionProtocol(controller)
    record = protocol.run_round_authenticated(window_s=2.0)
    # 5 packets x 1000 B x 8 / 2 s = 20 kb/s per rule.
    assert record.rates_bps[1] == pytest.approx(20_000.0)


def test_tampered_state_upload_detected():
    """The controller inflates a slave's byte counts in transit: the
    master's MAC check blows up instead of computing a skewed plan."""
    controller, _ = stand_up()
    states = [
        enclave.ecall("export_state_authenticated")
        for enclave in controller.enclaves
    ]
    tampered = bytearray(states[0])
    tampered[10] ^= 0x01
    with pytest.raises(SecureChannelError, match="authentication failed"):
        controller.enclaves[0].ecall(
            "master_recalculate",
            [bytes(tampered)],
            1.0, 10e9, 50 * 1024 * 1024, 14336, 8 * 1024 * 1024, 0.1, None,
        )


def test_tampered_plan_rejected_by_slaves():
    controller, _ = stand_up()
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=20_000.0)
    states = [
        enclave.ecall("export_state_authenticated")
        for enclave in controller.enclaves
    ]
    plan = controller.enclaves[0].ecall(
        "master_recalculate",
        states, 1.0,
        protocol.enclave_bandwidth,
        protocol.memory_model.performance_budget_bytes,
        protocol.memory_model.bytes_per_rule,
        protocol.memory_model.base_bytes,
        protocol.headroom, None,
    )
    tampered = bytearray(plan)
    tampered[5] ^= 0xFF
    with pytest.raises(SecureChannelError):
        controller.enclaves[0].ecall("install_plan_slice", bytes(tampered), 0)


def test_plan_slice_index_bounds():
    controller, _ = stand_up(num_rules=2)
    protocol = RuleDistributionProtocol(controller)
    states = [
        enclave.ecall("export_state_authenticated")
        for enclave in controller.enclaves
    ]
    plan = controller.enclaves[0].ecall(
        "master_recalculate",
        states, 1.0,
        protocol.enclave_bandwidth,
        protocol.memory_model.performance_budget_bytes,
        protocol.memory_model.bytes_per_rule,
        protocol.memory_model.base_bytes,
        protocol.headroom, None,
    )
    with pytest.raises(SecureChannelError, match="no slice"):
        controller.enclaves[0].ecall("install_plan_slice", plan, 99)


def test_victim_rules_added_at_round_boundary_via_sealed_channel(rpki, ias):
    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    session.submit_rules([rule(1, "203.0.113.0/25")])
    controller.carry([make_packet(dst_ip="203.0.113.5", size=500)])

    extra = [
        FilterRule(
            rule_id=50,
            pattern=FlowPattern(dst_prefix="203.0.113.128/25"),
            p_allow=0.5,
            rate_bps=1e6,
            requested_by=VICTIM,
        )
    ]
    sealed = session._channels[0].seal(
        json.dumps([r.to_dict() for r in extra]).encode()
    )
    protocol = RuleDistributionProtocol(controller)
    record = protocol.run_round_authenticated(
        window_s=1.0, extra_rules_sealed=sealed
    )
    installed = set()
    for enclave in controller.enclaves:
        installed |= {r.rule_id for r in enclave.ecall("installed_rules")}
    assert {1, 50} <= installed
    assert record.rates_bps[50] == pytest.approx(1e6)


def test_round_requires_enclaves():
    controller = IXPController(IASService())
    protocol = RuleDistributionProtocol(controller)
    with pytest.raises(DistributionError):
        protocol.run_round_authenticated(window_s=1.0)


def test_controller_cannot_forge_states_without_fleet_key():
    """A controller fabricating a whole state blob fails too — it has no
    fleet key to MAC it with."""
    controller, _ = stand_up(num_rules=2)
    forged_payload = json.dumps({"rules": [], "bytes": {"1": 10**12}}).encode()
    forged = forged_payload + b"\x00" * 32
    with pytest.raises(SecureChannelError):
        controller.enclaves[0].ecall(
            "master_recalculate",
            [forged], 1.0, 10e9, 50 * 1024 * 1024, 14336, 8 * 1024 * 1024,
            0.1, None,
        )


def test_authenticated_and_plain_rounds_agree():
    """Given identical measured rates, the authenticated round (optimizer
    inside the master enclave) lands on the same allocation as the
    controller-side round."""
    controller_a, _ = stand_up()
    controller_b, _ = stand_up()
    protocol_a = RuleDistributionProtocol(controller_a, enclave_bandwidth=20_000.0)
    protocol_b = RuleDistributionProtocol(controller_b, enclave_bandwidth=20_000.0)
    plain = protocol_a.run_round(window_s=1.0)
    auth = protocol_b.run_round_authenticated(window_s=1.0)
    assert plain.rates_bps == auth.rates_bps
    assert plain.num_enclaves_after == auth.num_enclaves_after
    assert plain.allocation.assignments == auth.allocation.assignments


def test_authenticated_round_is_repeatable():
    controller, _ = stand_up()
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=20_000.0)
    first = protocol.run_round_authenticated(window_s=1.0)
    second = protocol.run_round_authenticated(window_s=1.0)
    assert second.rules_moved == 0
    assert first.allocation.assignments == second.allocation.assignments
