"""Traffic trace save/replay."""

import pytest

from repro.adversary import dns_amplification_flows
from repro.core.filter import StatelessFilter
from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.trace import (
    iter_trace,
    load_trace,
    packet_from_record,
    packet_to_record,
    save_trace,
)
from repro.errors import ConfigurationError
from tests.conftest import VICTIM_PREFIX, make_packet


def wave(n=50):
    return [
        flow.make_packet()
        for flow in dns_amplification_flows(n, ingress_ases=(64500, 64501))
    ]


def test_record_roundtrip():
    packet = make_packet(size=512, ingress_as=64500)
    restored = packet_from_record(packet_to_record(packet))
    assert restored.five_tuple == packet.five_tuple
    assert restored.size == packet.size
    assert restored.ingress_as == packet.ingress_as
    assert restored.packet_id != packet.packet_id  # fresh identity


def test_save_and_load(tmp_path):
    packets = wave()
    path = tmp_path / "attack.trace"
    assert save_trace(path, packets) == len(packets)
    loaded = load_trace(path)
    assert [p.five_tuple for p in loaded] == [p.five_tuple for p in packets]
    assert [p.size for p in loaded] == [p.size for p in packets]
    assert [p.ingress_as for p in loaded] == [p.ingress_as for p in packets]


def test_iter_trace_streams(tmp_path):
    path = tmp_path / "t.trace"
    save_trace(path, wave(10))
    iterator = iter_trace(path)
    first = next(iterator)
    assert first.five_tuple.src_port == 53
    assert sum(1 for _ in iterator) == 9


def test_replay_produces_identical_verdicts(tmp_path):
    """The point of traces: a replay drives the filter identically."""
    rule = FilterRule(
        rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX), p_allow=0.5
    )
    packets = wave(80)
    path = tmp_path / "t.trace"
    save_trace(path, packets)

    f1 = StatelessFilter(secret="s")
    f1.install_rule(rule)
    original = [f1.decide(p).allowed for p in packets]
    f2 = StatelessFilter(secret="s")
    f2.install_rule(rule)
    replayed = [f2.decide(p).allowed for p in load_trace(path)]
    assert original == replayed


def test_rejects_non_trace_files(tmp_path):
    path = tmp_path / "bogus.txt"
    path.write_text("hello\nworld\n")
    with pytest.raises(ConfigurationError, match="not a VIF trace"):
        load_trace(path)
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ConfigurationError, match="expected"):
        load_trace(path)


def test_rejects_corrupt_records(tmp_path):
    path = tmp_path / "t.trace"
    save_trace(path, wave(2))
    with path.open("a") as fh:
        fh.write('{"src_ip": "not an ip"}\n')
    with pytest.raises(ConfigurationError, match="bad trace record"):
        load_trace(path)


def test_blank_lines_tolerated(tmp_path):
    path = tmp_path / "t.trace"
    save_trace(path, wave(3))
    with path.open("a") as fh:
        fh.write("\n\n")
    assert len(load_trace(path)) == 3
