"""Golden regression for trace-span serialization.

A fixed-seed two-enclave fleet round, recorded with a deterministic
fixed-step clock, must serialize to exactly this Chrome-trace event set —
names, phases, timestamps and the parent/child nesting.  Any change to the
span taxonomy (renamed spans, re-parenting, added/removed instrumentation
on this path) shows up here as a diff against the golden list and must be
made deliberately.
"""

from __future__ import annotations

import json
import os
import re
import threading

import pytest

from repro import obs
from repro.core.controller import IXPController
from repro.core.fleet import FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.faults.harness import rule_traffic
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.tee.attestation import IASService
from repro.util.units import GBPS

#: (name, span_id, parent_id, ts_us, dur_us) for every event, in record
#: order.  Deploy ECalls are roots; the round is one tree: fleet.round over
#: probe (2 pings, one per enclave), recover (no-op), carry (10 bursts).
GOLDEN_EVENTS = [
    ("ecall.set_scale_out_mode", 1, None, 0.0, 1000.0),
    ("ecall.installed_rules", 2, None, 2000.0, 1000.0),
    ("ecall.install_rules", 3, None, 4000.0, 1000.0),
    ("ecall.set_assigned_rules", 4, None, 6000.0, 1000.0),
    ("ecall.set_scale_out_mode", 5, None, 8000.0, 1000.0),
    ("ecall.installed_rules", 6, None, 10000.0, 1000.0),
    ("ecall.install_rules", 7, None, 12000.0, 1000.0),
    ("ecall.set_assigned_rules", 8, None, 14000.0, 1000.0),
    ("fleet.round", 9, None, 16000.0, 31000.0),
    ("fleet.probe", 10, 9, 17000.0, 5000.0),
    ("ecall.ping", 11, 10, 18000.0, 1000.0),
    ("ecall.ping", 12, 10, 20000.0, 1000.0),
    ("fleet.recover", 13, 9, 23000.0, 1000.0),
    ("fleet.carry", 14, 9, 25000.0, 21000.0),
    ("ecall.process_burst", 15, 14, 26000.0, 1000.0),
    ("ecall.process_burst", 16, 14, 28000.0, 1000.0),
    ("ecall.process_burst", 17, 14, 30000.0, 1000.0),
    ("ecall.process_burst", 18, 14, 32000.0, 1000.0),
    ("ecall.process_burst", 19, 14, 34000.0, 1000.0),
    ("ecall.process_burst", 20, 14, 36000.0, 1000.0),
    ("ecall.process_burst", 21, 14, 38000.0, 1000.0),
    ("ecall.process_burst", 22, 14, 40000.0, 1000.0),
    ("ecall.process_burst", 23, 14, 42000.0, 1000.0),
    ("ecall.process_burst", 24, 14, 44000.0, 1000.0),
]


def _fixed_step_clock(step_s: float = 0.001):
    state = {"now": 0.0}

    def now() -> float:
        state["now"] += step_s
        return state["now"]

    return now


@pytest.fixture
def golden_env():
    """Fresh registry + deterministic enabled tracer, restored afterwards."""
    prev_registry = obs.set_registry(MetricsRegistry())
    prev_tracer = obs.set_tracer(
        Tracer(time_source=_fixed_step_clock(), enabled=True)
    )
    yield obs.get_tracer()
    obs.set_registry(prev_registry)
    obs.set_tracer(prev_tracer)


def _run_round() -> None:
    controller = IXPController(IASService())
    fleet = FleetManager(controller, config=FleetConfig(seed="golden"))
    rules = RuleSet()
    for i in range(4):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"10.0.{i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by="victim.example",
                rate_bps=0.6 * 2 * 10 * GBPS / 4,
            )
        )
    fleet.deploy(rules, enclaves_override=2)
    fleet.run_round(rule_traffic(rules, seed="golden/traffic")(0))


def test_two_enclave_round_matches_golden_trace(golden_env):
    _run_round()
    doc = golden_env.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    # Spans stamp the real process/thread ids (multi-worker traces render
    # as separate lanes); in this single-threaded run every event shares
    # this process's identity.
    assert all(
        e["pid"] == os.getpid() and e["tid"] == threading.get_ident()
        for e in events
    )
    distilled = [
        (
            e["name"],
            e["args"]["span_id"],
            e["args"].get("parent_id"),
            e["ts"],
            e["dur"],
        )
        for e in events
    ]
    assert distilled == GOLDEN_EVENTS


def _normalized(doc: dict) -> str:
    """Serialized trace with the process-unique fleet instance label (the
    only run-to-run variation by design) normalized away."""
    return re.sub(r'"fleet-\d+"', '"fleet-N"', json.dumps(doc, sort_keys=True))


def test_round_trace_serialization_is_stable(golden_env, tmp_path):
    """Same seed, same clock: the written JSON is byte-for-byte stable
    (modulo the per-process fleet instance label), and the nesting
    recovered from tree() matches the golden parent links."""
    _run_round()
    first = _normalized(golden_env.to_chrome_trace())
    path = tmp_path / "round.trace.json"
    golden_env.write_chrome_trace(str(path))
    assert _normalized(json.loads(path.read_text())) == first

    golden_env.clear()
    obs.set_tracer(Tracer(time_source=_fixed_step_clock(), enabled=True))
    try:
        _run_round()
        second = _normalized(obs.get_tracer().to_chrome_trace())
    finally:
        obs.set_tracer(golden_env)
    assert second == first

    # tree() mirrors the golden parent/child structure.
    tracer = Tracer(time_source=_fixed_step_clock(), enabled=True)
    prev = obs.set_tracer(tracer)
    try:
        _run_round()
    finally:
        obs.set_tracer(prev)
    roots = tracer.tree()
    round_node = roots[-1]
    assert round_node["name"] == "fleet.round"
    assert [c["name"] for c in round_node["children"]] == [
        "fleet.probe",
        "fleet.recover",
        "fleet.carry",
    ]
    probe, recover, carry = round_node["children"]
    assert [c["name"] for c in probe["children"]] == ["ecall.ping"] * 2
    assert recover["children"] == []
    assert [c["name"] for c in carry["children"]] == [
        "ecall.process_burst"
    ] * 10


def test_raising_span_tagged_with_error_type(golden_env):
    """A span unwound by an exception carries error=<ExceptionType> in its
    args (and therefore in the Chrome-trace serialization); the exception
    still propagates."""
    with pytest.raises(RuntimeError, match="boom"):
        with golden_env.span("unit.crash", site="test"):
            raise RuntimeError("boom")
    record = next(r for r in golden_env.records if r.name == "unit.crash")
    assert record.args["error"] == "RuntimeError"
    assert record.end_s is not None  # still closed cleanly
    event = next(
        e
        for e in golden_env.to_chrome_trace()["traceEvents"]
        if e["name"] == "unit.crash"
    )
    assert event["args"]["error"] == "RuntimeError"
    assert event["args"]["site"] == "test"


def test_clean_span_has_no_error_tag(golden_env):
    with golden_env.span("unit.clean"):
        pass
    record = next(r for r in golden_env.records if r.name == "unit.clean")
    assert "error" not in record.args


def test_span_args_carry_identity(golden_env):
    _run_round()
    round_record = next(
        r for r in golden_env.records if r.name == "fleet.round"
    )
    assert round_record.args["fleet"].startswith("fleet-")
    burst = next(
        r for r in golden_env.records if r.name == "ecall.process_burst"
    )
    assert "enclave" in burst.args
