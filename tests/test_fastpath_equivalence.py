"""Property tests: the compiled fast path is bit-identical to the spec.

The hot-path compilation (integer rule matching, single-digest sketch
hashing, decision memoization, flow-coalesced bursts) is only admissible if
it is *semantically invisible*: every verdict, trie answer, and sketch bin
must equal what the straightforward interpreted implementation produces.
These tests pin that equivalence against independent reference
implementations over seeded random rule/flow populations — including
non-stride prefix lengths, overlapping rules, and cross-family addresses.
"""

from __future__ import annotations

import hashlib
import ipaddress
import random
from typing import List, Optional

from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.lookup.multibit_trie import MultiBitTrie
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import HashFamily

SEED = 0xF117E2


# ---------------------------------------------------------------------------
# Reference implementations (deliberately naive: ipaddress / hashlib direct).
# ---------------------------------------------------------------------------


def ref_matches(pattern: FlowPattern, flow: FiveTuple) -> bool:
    """The pre-compilation FlowPattern.matches, via the ipaddress module."""
    src_net = ipaddress.ip_network(pattern.src_prefix, strict=False)
    dst_net = ipaddress.ip_network(pattern.dst_prefix, strict=False)
    if ipaddress.ip_address(flow.src_ip) not in src_net:
        return False
    if ipaddress.ip_address(flow.dst_ip) not in dst_net:
        return False
    if pattern.src_ports is not None and not (
        pattern.src_ports[0] <= flow.src_port <= pattern.src_ports[1]
    ):
        return False
    if pattern.dst_ports is not None and not (
        pattern.dst_ports[0] <= flow.dst_port <= pattern.dst_ports[1]
    ):
        return False
    return pattern.protocol is None or flow.protocol == pattern.protocol


def ref_indexes(depth: int, width: int, seed: str, key) -> List[int]:
    """Independent rebuild of the documented single-digest derivation."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    blocks = (depth + 3) // 4
    buf = b"".join(
        hashlib.sha256(
            seed.encode("utf-8") + b"\x02" + block.to_bytes(4, "big") + b"\x00" + key
        ).digest()
        for block in range(blocks)
    )
    return [
        int.from_bytes(buf[8 * row : 8 * row + 8], "big") % width
        for row in range(depth)
    ]


# ---------------------------------------------------------------------------
# Random populations (seeded — failures reproduce).
# ---------------------------------------------------------------------------


def random_flow(rng: random.Random) -> FiveTuple:
    return FiveTuple(
        src_ip=f"{rng.randrange(1, 224)}.{rng.randrange(256)}."
        f"{rng.randrange(256)}.{rng.randrange(256)}",
        dst_ip=f"10.{rng.randrange(8)}.{rng.randrange(256)}.{rng.randrange(256)}",
        src_port=rng.randrange(65536),
        dst_port=rng.choice([80, 443, 53, rng.randrange(65536)]),
        protocol=rng.choice([Protocol.TCP, Protocol.UDP, Protocol.ICMP]),
    )


def random_pattern(rng: random.Random) -> FlowPattern:
    """Random pattern biased to overlap the random_flow population.

    Prefix lengths are drawn from the full 0..32 range, so non-stride
    lengths (/11, /19, /27...) and overlapping coarse/fine pairs are common.
    """

    def prefix(base: str) -> str:
        length = rng.choice([0, 4, 8, 11, 16, 19, 24, 27, 30, 32])
        return f"{base}/{length}"

    def ports():
        if rng.random() < 0.5:
            return None
        lo = rng.randrange(65536)
        if rng.random() < 0.5:
            return (lo, lo)
        return (lo, min(0xFFFF, lo + rng.randrange(1, 2048)))

    src_base = (
        f"{rng.randrange(1, 224)}.{rng.randrange(256)}."
        f"{rng.randrange(256)}.{rng.randrange(256)}"
    )
    dst_base = f"10.{rng.randrange(8)}.{rng.randrange(256)}.{rng.randrange(256)}"
    return FlowPattern(
        src_prefix=prefix(src_base),
        dst_prefix=prefix(dst_base),
        src_ports=ports(),
        dst_ports=ports(),
        protocol=rng.choice([None, Protocol.TCP, Protocol.UDP]),
    )


def random_rules(rng: random.Random, count: int) -> List[FilterRule]:
    rules = []
    for rule_id in range(1, count + 1):
        if rng.random() < 0.6:
            rules.append(
                FilterRule(
                    rule_id=rule_id,
                    pattern=random_pattern(rng),
                    action=rng.choice([Action.ALLOW, Action.DROP]),
                )
            )
        else:
            rules.append(
                FilterRule(
                    rule_id=rule_id,
                    pattern=random_pattern(rng),
                    p_allow=rng.choice([0.0, 0.25, 0.5, 0.9, 1.0]),
                )
            )
    return rules


# ---------------------------------------------------------------------------
# 1. Compiled pattern matching == ipaddress reference.
# ---------------------------------------------------------------------------


class TestCompiledMatchEquivalence:
    def test_random_patterns_and_flows(self):
        rng = random.Random(SEED)
        patterns = [random_pattern(rng) for _ in range(400)]
        flows = [random_flow(rng) for _ in range(25)]
        checked = 0
        for pattern in patterns:
            for flow in flows:
                assert pattern.matches(flow) == ref_matches(pattern, flow), (
                    pattern,
                    flow,
                )
                checked += 1
        assert checked == 10_000

    def test_targeted_flows_inside_each_pattern(self):
        """Flows constructed to sit just inside/outside each prefix edge."""
        rng = random.Random(SEED + 1)
        for _ in range(2_000):
            pattern = random_pattern(rng)
            net = ipaddress.ip_network(pattern.dst_prefix, strict=False)
            for raw in (
                int(net.network_address),
                int(net.broadcast_address),
                (int(net.network_address) - 1) % 2**32,
                (int(net.broadcast_address) + 1) % 2**32,
            ):
                flow = FiveTuple(
                    src_ip=str(ipaddress.ip_address(rng.randrange(2**32))),
                    dst_ip=str(ipaddress.ip_address(raw)),
                    src_port=rng.randrange(65536),
                    dst_port=rng.randrange(65536),
                    protocol=Protocol.TCP,
                )
                assert pattern.matches(flow) == ref_matches(pattern, flow)

    def test_cross_family_never_matches(self):
        pattern = FlowPattern(src_prefix="0.0.0.0/0", dst_prefix="10.0.0.0/8")
        v6_flow = FiveTuple(
            src_ip="2001:db8::1",
            dst_ip="2001:db8::2",
            src_port=1,
            dst_port=2,
            protocol=Protocol.TCP,
        )
        assert pattern.matches(v6_flow) is False
        assert ref_matches(pattern, v6_flow) is False

    def test_v6_patterns_match_v6_flows(self):
        pattern = FlowPattern(src_prefix="2001:db8::/32", dst_prefix="::/0")
        v6_flow = FiveTuple(
            src_ip="2001:db8::1",
            dst_ip="2001:db8::2",
            src_port=1,
            dst_port=2,
            protocol=Protocol.TCP,
        )
        assert pattern.matches(v6_flow) is True
        assert ref_matches(pattern, v6_flow) is True


# ---------------------------------------------------------------------------
# 2. Trie lookup == linear most-specific scan, over overlapping rules.
# ---------------------------------------------------------------------------


class TestTrieEquivalence:
    def test_trie_agrees_with_linear_scan(self):
        rng = random.Random(SEED + 2)
        rules = random_rules(rng, 1_500)
        ruleset = RuleSet(rules)
        for stride in (4, 8, 16):
            trie = MultiBitTrie(stride_bits=stride)
            trie.insert_batch(rules)
            for _ in range(2_000):
                flow = random_flow(rng)
                expected = ruleset.match(flow)
                got = trie.lookup(flow)
                expected_id = expected.rule_id if expected else None
                got_id = got.rule_id if got else None
                assert got_id == expected_id, (stride, flow)

    def test_nested_overlapping_prefixes(self):
        """A /8, /16, /24 and /32 ladder over one address resolves by depth."""
        ladder = [
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"10.1.2.3/{length}"),
                action=Action.DROP,
            )
            for i, length in enumerate([8, 16, 24, 32])
        ]
        trie = MultiBitTrie()
        trie.insert_batch(ladder)
        ruleset = RuleSet(ladder)
        flow = FiveTuple("1.2.3.4", "10.1.2.3", 1, 2, Protocol.TCP)
        assert trie.lookup(flow).rule_id == ruleset.match(flow).rule_id == 4
        sibling = FiveTuple("1.2.3.4", "10.1.2.9", 1, 2, Protocol.TCP)
        assert trie.lookup(sibling).rule_id == ruleset.match(sibling).rule_id == 3


# ---------------------------------------------------------------------------
# 3. Single-digest HashFamily == documented derivation; vectors == transpose.
# ---------------------------------------------------------------------------


class TestHashFamilyEquivalence:
    def test_indexes_match_reference(self):
        rng = random.Random(SEED + 3)
        for depth, width in [(1, 7), (2, 64 * 1024), (3, 1000), (4, 13), (5, 97), (9, 512)]:
            family = HashFamily(depth, width, "vif/test")
            for _ in range(300):
                key = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
                assert list(family.indexes(key)) == ref_indexes(
                    depth, width, "vif/test", key
                )

    def test_str_and_bytes_keys_agree(self):
        family = HashFamily(2, 4096, "vif")
        assert list(family.indexes("10.0.0.1")) == list(
            family.indexes(b"10.0.0.1")
        )

    def test_index_vectors_is_transpose_of_indexes(self):
        rng = random.Random(SEED + 4)
        family = HashFamily(3, 777, "vif/x")
        keys = [str(rng.random()).encode() for _ in range(200)]
        vectors = family.index_vectors(keys)
        per_key = [family.indexes(k) for k in keys]
        for row in range(family.depth):
            assert vectors[row] == [idx[row] for idx in per_key]

    def test_empty_batch(self):
        family = HashFamily(2, 10, "vif")
        assert family.index_vectors([]) == [[], []]


# ---------------------------------------------------------------------------
# 4. Decision cache is pure memoization: verdicts agree packet-for-packet.
# ---------------------------------------------------------------------------


class TestDecisionCacheEquivalence:
    def _packet_stream(self, rng: random.Random, n: int) -> List[Packet]:
        flows = [random_flow(rng) for _ in range(max(1, n // 8))]
        return [
            Packet(five_tuple=rng.choice(flows), size=100) for _ in range(n)
        ]

    def test_cached_filter_agrees_with_uncached(self):
        for mode in ConnectionPreservingMode:
            rng = random.Random(SEED + 5)
            rules = random_rules(rng, 600)
            plain = StatelessFilter("s3cret", mode=mode)
            cached = StatelessFilter("s3cret", mode=mode, decision_cache_size=64)
            plain.install_rules(rules)
            cached.install_rules(rules)
            for i, packet in enumerate(self._packet_stream(rng, 3_000)):
                a = plain.decide(packet)
                b = cached.decide(packet)
                assert a.allowed == b.allowed, (mode, packet.five_tuple)
                assert (a.rule.rule_id if a.rule else None) == (
                    b.rule.rule_id if b.rule else None
                )
                if mode is ConnectionPreservingMode.HYBRID and i % 500 == 499:
                    plain.rule_update_tick()
                    cached.rule_update_tick()

    def test_cache_invalidated_on_rule_changes(self):
        f = StatelessFilter("s3cret", decision_cache_size=1024)
        rule = FilterRule(
            rule_id=1,
            pattern=FlowPattern(dst_prefix="10.0.0.0/8"),
            action=Action.DROP,
        )
        flow = FiveTuple("1.1.1.1", "10.2.3.4", 5, 6, Protocol.TCP)
        assert f.decide_flow(flow).allowed is True
        f.install_rule(rule)
        assert f.decide_flow(flow).allowed is False
        f.remove_rule(rule)
        assert f.decide_flow(flow).allowed is True

    def test_cache_bounded(self):
        f = StatelessFilter("s3cret", decision_cache_size=8)
        rng = random.Random(SEED + 6)
        for _ in range(200):
            f.decide_flow(random_flow(rng))
        assert len(f._decision_cache) <= 8


# ---------------------------------------------------------------------------
# 5. Victim-vs-enclave sketch comparison survives the hash-family change.
# ---------------------------------------------------------------------------


class TestSketchComparisonAcrossFastPath:
    def test_weighted_update_bit_identical_to_per_packet(self):
        rng = random.Random(SEED + 7)
        keys = [f"src-{rng.randrange(50)}".encode() for _ in range(5_000)]
        per_packet = CountMinSketch(2, 1024, "vif/in")
        weighted = CountMinSketch(2, 1024, "vif/in")
        for key in keys:
            per_packet.update(key)
        counts: dict = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        weighted.update_weighted(counts)
        assert per_packet.bins() == weighted.bins()
        assert per_packet.total == weighted.total

    def test_victim_and_enclave_sketches_compare_equal(self):
        """Victim builds per-packet, enclave coalesces; serialized transport
        round-trips; the bins compare equal bin-for-bin."""
        rng = random.Random(SEED + 8)
        keys = [random_flow(rng).key() for _ in range(2_000)]
        victim = CountMinSketch(2, 4096, "vif/out")
        for key in keys:
            victim.update(key)
        enclave = CountMinSketch(2, 4096, "vif/out")
        counts: dict = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        enclave.update_weighted(counts)
        shipped = CountMinSketch.deserialize(enclave.serialize())
        assert victim.family.compatible_with(shipped.family)
        assert victim.bins() == shipped.bins()
        for key in set(keys):
            assert victim.estimate(key) == shipped.estimate(key)

    def test_family_version_participates_in_compatibility(self):
        a = HashFamily(2, 64, "vif")
        b = HashFamily(2, 64, "vif")
        assert a.compatible_with(b)
        # Simulate a peer still on the old per-row derivation.
        b.version = 1  # type: ignore[misc]
        assert not a.compatible_with(b)

    def test_stale_derivation_blob_rejected(self):
        sketch = CountMinSketch(2, 64, "vif")
        sketch.update(b"k")
        blob = bytearray(sketch.serialize())
        blob[1] = 1  # family derivation version byte
        try:
            CountMinSketch.deserialize(bytes(blob))
        except ValueError as exc:
            assert "derivation" in str(exc)
        else:
            raise AssertionError("stale family version must be rejected")


# ---------------------------------------------------------------------------
# 6. FiveTuple cached encodings.
# ---------------------------------------------------------------------------


class TestFiveTupleCachedEncodings:
    def test_key_formats_unchanged(self):
        flow = FiveTuple("10.0.0.1", "203.0.113.9", 1234, 80, Protocol.TCP)
        assert flow.key() == b"10.0.0.1|203.0.113.9|1234|80|6"
        assert flow.src_ip_key() == b"10.0.0.1"
        assert str(flow) == "TCP 10.0.0.1:1234 -> 203.0.113.9:80"

    def test_key_is_cached_object(self):
        flow = FiveTuple("10.0.0.1", "203.0.113.9", 1234, 80, Protocol.TCP)
        assert flow.key() is flow.key()
        assert flow.src_ip_key() is flow.src_ip_key()

    def test_int_caches_match_ipaddress(self):
        rng = random.Random(SEED + 9)
        for _ in range(1_000):
            flow = random_flow(rng)
            assert flow.src_ip_int == int(ipaddress.ip_address(flow.src_ip))
            assert flow.dst_ip_int == int(ipaddress.ip_address(flow.dst_ip))
            assert flow.src_ip_version == 4 and flow.dst_ip_version == 4
