"""The live telemetry endpoint: /metrics, /varz, /healthz, /readyz.

The HTTP layer is the zero-dependency ``asyncio.start_server`` loop in
``repro/obs/telemetry.py``; these tests drive it with the same
``http_get`` client the CLI smoke gate uses, and parse every ``/metrics``
payload with the shared ``tests.promtext`` parser so an exposition that
drifts off-spec fails here before it fails a real scraper.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    StageLatencyTracker,
    TelemetryServer,
    VARZ_SCHEMA,
    http_get,
)
from repro.serve import (
    LocalBackend,
    PktgenSource,
    ServeConfig,
    ServeService,
    ServeState,
)

from tests import promtext


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.set_registry(MetricsRegistry())
    journal = obs.set_journal(EventJournal(enabled=True))
    yield obs.get_journal()
    obs.set_registry(registry)
    obs.set_journal(journal)


# -- the stage-latency tracker -------------------------------------------------


def test_tracker_publishes_quantile_gauges():
    registry = MetricsRegistry()
    tracker = StageLatencyTracker()
    for _ in range(100):
        tracker.observe("filter", 0.010)
    tracker.observe("filter", 1.0)
    tracker.publish(registry)
    text = registry.render_prometheus()
    exposition = promtext.parse(text)
    p50 = exposition.value(
        "vif_serve_stage_latency_seconds", stage="filter", quantile="p50"
    )
    p999 = exposition.value(
        "vif_serve_stage_latency_seconds", stage="filter", quantile="p999"
    )
    assert 0.008 <= p50 <= 0.012
    assert p999 >= 0.5  # the 1s outlier dominates the extreme tail
    assert (
        exposition.value(
            "vif_serve_stage_latency_count", stage="filter"
        )
        == 101
    )
    snap = tracker.snapshot()
    assert snap["filter"]["count"] == 101


def test_tracker_merge_folds_foreign_sketches():
    ours = StageLatencyTracker()
    theirs = StageLatencyTracker()
    ours.observe("e2e", 0.5)
    theirs.observe("e2e", 0.5)
    theirs.observe("drain", 0.1)
    ours.merge(theirs)
    assert ours.sketch("e2e").count == 2
    assert ours.sketch("drain").count == 1


# -- the HTTP server in isolation ---------------------------------------------


def _serve_and_get(server: TelemetryServer, *paths: str):
    """Start the server, GET each path, stop; returns the responses."""

    async def scenario():
        await server.start()
        try:
            out = []
            for path in paths:
                out.append(await http_get(server.host, server.port, path))
            return out
        finally:
            await server.stop()

    return asyncio.run(scenario())


def test_metrics_endpoint_parses_and_refresh_runs():
    registry = MetricsRegistry()
    registry.counter("vif_test_scrapes_total", help="scrapes").inc(0)
    refreshed = []
    server = TelemetryServer(
        registry=registry,
        refresh=lambda: refreshed.append(True),
    )
    ((status, headers, body),) = _serve_and_get(server, "/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    exposition = promtext.parse(body.decode())
    assert exposition.value("vif_test_scrapes_total") == 0
    assert refreshed  # the pre-scrape hook ran


def test_varz_healthz_readyz_and_errors():
    registry = MetricsRegistry()
    server = TelemetryServer(
        registry=registry,
        health=lambda: (True, {"note": "alive"}),
        ready=lambda: (False, {"reason": "warming up"}),
        varz=lambda: {"label": "unit"},
    )
    responses = _serve_and_get(
        server, "/varz", "/healthz", "/readyz", "/nope"
    )
    (varz_s, varz_h, varz_b) = responses[0]
    assert varz_s == 200
    varz = json.loads(varz_b.decode())
    assert varz["schema"] == VARZ_SCHEMA
    assert varz["service"] == {"label": "unit"}
    assert "metrics" in varz

    health_s, _, health_b = responses[1]
    assert health_s == 200
    assert json.loads(health_b.decode()) == {"ok": True, "note": "alive"}

    ready_s, _, ready_b = responses[2]
    assert ready_s == 503
    assert json.loads(ready_b.decode()) == {
        "ok": False,
        "reason": "warming up",
    }

    assert responses[3][0] == 404


def test_non_get_method_rejected():
    server = TelemetryServer(registry=MetricsRegistry())

    async def scenario():
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return status_line
        finally:
            await server.stop()

    status_line = asyncio.run(scenario())
    assert b"405" in status_line


def test_ephemeral_port_resolves_and_stop_refuses_connections():
    server = TelemetryServer(registry=MetricsRegistry(), port=0)

    async def scenario():
        await server.start()
        port = server.port
        assert port != 0
        status, _, _ = await http_get(server.host, port, "/metrics")
        assert status == 200
        await server.stop()
        with pytest.raises(OSError):
            await http_get(server.host, port, "/metrics", timeout=0.5)

    asyncio.run(scenario())


# -- wired into the serve runtime ---------------------------------------------


def _local_backend() -> LocalBackend:
    filt = StatelessFilter(secret="vif-telemetry-test")
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="203.0.100.0/24"),
        action=Action.DROP,
        requested_by="victim.example",
    )
    filt.install_rule(rule)
    return LocalBackend(filt)


def test_serve_endpoints_live_and_degraded_hold_flips_readyz():
    source = PktgenSource(
        _local_backend().filter.installed_rules(),
        packets_per_rule=2,
        background_packets=1,
        total_bursts=400,
    )
    config = ServeConfig(
        heartbeat_deadline_s=1.0,
        watchdog_interval_s=0.02,
        shed_timeout_s=0.1,
        telemetry_port=0,
    )
    service = ServeService(source, _local_backend(), config=config)

    async def scenario():
        await service.start()
        try:
            telemetry = service.telemetry
            assert telemetry is not None and telemetry.running

            status, _, body = await http_get(
                telemetry.host, telemetry.port, "/healthz"
            )
            assert status == 200
            assert json.loads(body.decode())["watchdog_alive"] is True

            status, _, body = await http_get(
                telemetry.host, telemetry.port, "/readyz"
            )
            assert status == 200
            detail = json.loads(body.decode())
            assert detail["state"] == "serving"
            assert detail["degraded"] is False

            # A stage restart arms the degraded hold; /readyz flips to 503
            # (while /healthz stays 200 — the watchdog is doing its job)
            # and recovers once the hold expires.
            loop = asyncio.get_running_loop()
            service._degraded_until = loop.time() + 0.3
            status, _, body = await http_get(
                telemetry.host, telemetry.port, "/readyz"
            )
            assert status == 503
            assert json.loads(body.decode())["degraded"] is True
            status, _, _ = await http_get(
                telemetry.host, telemetry.port, "/healthz"
            )
            assert status == 200

            deadline = loop.time() + 5.0
            while loop.time() < deadline:
                status, _, _ = await http_get(
                    telemetry.host, telemetry.port, "/readyz"
                )
                if status == 200:
                    break
                await asyncio.sleep(0.02)
            assert status == 200, "readyz never recovered after the hold"

            # /metrics from the live service parses and carries the stage
            # latency gauges the refresh hook publishes.
            status, _, body = await http_get(
                telemetry.host, telemetry.port, "/metrics"
            )
            assert status == 200
            exposition = promtext.parse(body.decode())
            families = {s.name for s in exposition.samples}
            assert "vif_serve_stage_latency_seconds" in families

            status, _, body = await http_get(
                telemetry.host, telemetry.port, "/varz"
            )
            varz = json.loads(body.decode())
            assert varz["schema"] == VARZ_SCHEMA
            assert varz["service"]["state"] == "serving"
            assert "stage_latency" in varz["service"]

            host, port = telemetry.host, telemetry.port
        finally:
            report = await service.drain()
        assert report.unaccounted == 0
        # Drain stops the endpoint with the service.
        with pytest.raises(OSError):
            await http_get(host, port, "/healthz", timeout=0.5)

    asyncio.run(scenario())


def test_stage_restart_arms_the_degraded_hold():
    """The real path: a hung stage is restarted by the watchdog and the
    restart stamps ``_degraded_until`` into the future."""
    source = PktgenSource(
        _local_backend().filter.installed_rules(),
        packets_per_rule=2,
        background_packets=1,
        total_bursts=2000,
    )
    config = ServeConfig(
        heartbeat_deadline_s=0.2,
        watchdog_interval_s=0.02,
        shed_timeout_s=0.1,
        readiness_hold_s=5.0,
    )
    async def scenario():
        hung = {"armed": True}

        async def chaos(stage: str, burst_index: int) -> None:
            if stage == "filter" and hung.pop("armed", None):
                await asyncio.sleep(10.0)  # cancelled by the watchdog

        service = ServeService(
            source, _local_backend(), config=config, chaos=chaos
        )
        await service.start()
        try:
            deadline = asyncio.get_running_loop().time() + 10.0
            while service.stage_restarts.get("filter", 0) == 0:
                assert (
                    asyncio.get_running_loop().time() < deadline
                ), "watchdog never restarted the hung stage"
                await asyncio.sleep(0.01)
            now = asyncio.get_running_loop().time()
            assert service._degraded_until > now
            ok, detail = service._ready_status()
            assert ok is False and detail["degraded"] is True
        finally:
            await service.drain()

    asyncio.run(scenario())
