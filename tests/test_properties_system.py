"""Cross-module property-based tests: invariants that must hold across the
whole system, on randomized inputs."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import IXPController, LoadBalancer
from repro.core.rules import FilterRule, FlowPattern, RuleSet
from repro.dataplane.pktgen import PacketGenerator
from repro.errors import InfeasibleError
from repro.optim.greedy import greedy_solve
from repro.optim.problem import RuleDistributionProblem
from repro.tee.attestation import IASService
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS
from tests.conftest import VICTIM_PREFIX, make_packet


@settings(max_examples=20, deadline=None)
@given(
    num_rules=st.integers(min_value=1, max_value=12),
    total_gbps=st.floats(min_value=0.5, max_value=60.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_allocation_to_routes_conserves_bandwidth(num_rules, total_gbps, seed):
    """Greedy allocation -> LB route weights: each rule's replica weights
    sum to its bandwidth b_i (nothing lost in the handoff)."""
    bandwidths = lognormal_bandwidths(num_rules, total_gbps * GBPS, seed=seed)
    problem = RuleDistributionProblem(bandwidths=bandwidths)
    try:
        allocation = greedy_solve(problem)
    except InfeasibleError:
        return
    for i, b in enumerate(bandwidths):
        total = sum(
            share
            for assignment in allocation.assignments
            for rule, share in assignment.items()
            if rule == i
        )
        assert math.isclose(total, b, rel_tol=1e-6, abs_tol=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=5
    ),
    num_flows=st.integers(min_value=1, max_value=60),
)
def test_load_balancer_routes_every_matching_packet_exactly_once(
    weights, num_flows
):
    """Whatever the replica weights, a matching packet goes to exactly one
    valid enclave index, deterministically."""
    rule = FilterRule(
        rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX), p_allow=0.5
    )
    lb = LoadBalancer()
    lb.configure(
        RuleSet([rule]), {1: [(j, w) for j, w in enumerate(weights)]}
    )
    for i in range(num_flows):
        packet = make_packet(src_port=1024 + i)
        first = lb.route(packet)
        assert first is not None and 0 <= first < len(weights)
        assert lb.route(packet) == first


@settings(max_examples=10, deadline=None)
@given(
    num_flows=st.integers(min_value=5, max_value=40),
    p_allow=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=50),
)
def test_honest_deployment_always_passes_audit(num_flows, p_allow, seed):
    """End-to-end soundness: for random rules and traffic, an honest
    filtering network never trips the victim's audit."""
    from repro.core.bypass import VictimAuditor, merge_enclave_logs

    controller = IXPController(IASService())
    controller.launch_filters(1)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
        p_allow=p_allow,
    )
    controller.install_single_filter(RuleSet([rule]))
    generator = PacketGenerator(seed)
    packets = [
        flow.make_packet()
        for flow in generator.uniform_flows(num_flows, dst_ip="203.0.113.9")
    ]
    delivered = controller.carry(packets)
    auditor = VictimAuditor("v")
    auditor.observe_many(delivered)
    merged = merge_enclave_logs(controller.collect_outgoing_logs())
    assert auditor.audit(merged).clean


@settings(max_examples=10, deadline=None)
@given(
    drop_index=st.integers(min_value=0, max_value=1_000_000),
    num_flows=st.integers(min_value=2, max_value=30),
)
def test_any_single_post_filter_drop_is_caught(drop_index, num_flows):
    """Completeness: removing ANY single delivered packet flips the audit."""
    from repro.core.bypass import VictimAuditor, merge_enclave_logs

    controller = IXPController(IASService())
    controller.launch_filters(1)
    rule = FilterRule(
        rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX), p_allow=1.0
    )
    controller.install_single_filter(RuleSet([rule]))
    generator = PacketGenerator(7)
    packets = [
        flow.make_packet()
        for flow in generator.uniform_flows(num_flows, dst_ip="203.0.113.9")
    ]
    delivered = controller.carry(packets)
    assert delivered
    victim_sees = list(delivered)
    del victim_sees[drop_index % len(victim_sees)]
    auditor = VictimAuditor("v")
    auditor.observe_many(victim_sees)
    merged = merge_enclave_logs(controller.collect_outgoing_logs())
    evidence = auditor.audit(merged)
    assert evidence.suspected_attacks == ["drop-after-filtering"]
