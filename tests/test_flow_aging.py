"""Flow-table aging: bounded memory with connection preservation intact."""

from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.lookup.flowtable import ExactMatchFlowTable
from tests.conftest import VICTIM_PREFIX, make_packet


def half_rule():
    return FilterRule(
        rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX), p_allow=0.5
    )


def flow(port):
    return make_packet(src_port=port).five_tuple


def test_lookup_refreshes_idleness():
    table = ExactMatchFlowTable()
    table.install(flow(1), Action.ALLOW)
    table.install(flow(2), Action.DROP)
    for _ in range(3):
        table.advance_epoch()
        table.lookup(flow(1))  # flow 1 stays hot; flow 2 idles
    evicted = table.evict_idle(max_idle_epochs=2)
    assert evicted == 1
    assert table.lookup(flow(1)) is Action.ALLOW
    assert table.lookup(flow(2)) is None


def test_evict_idle_zero_epochs():
    table = ExactMatchFlowTable()
    table.install(flow(1), Action.ALLOW)
    table.advance_epoch()
    assert table.evict_idle(max_idle_epochs=0) == 1


def test_evict_idle_validation():
    import pytest

    with pytest.raises(ValueError):
        ExactMatchFlowTable().evict_idle(-1)


def test_flush_pending_entries_stamped_fresh():
    table = ExactMatchFlowTable()
    table.queue(flow(1), Action.ALLOW)
    table.flush_pending()
    table.advance_epoch()
    assert table.evict_idle(max_idle_epochs=1) == 0  # only one epoch idle


def test_filter_tick_with_eviction_bounds_table():
    filt = StatelessFilter(secret="s", mode=ConnectionPreservingMode.HYBRID)
    filt.install_rule(half_rule())
    # Wave 1: 50 flows, converted to entries at the tick.
    for i in range(50):
        filt.decide(make_packet(src_port=1000 + i))
    filt.rule_update_tick(max_idle_epochs=1)
    assert len(filt.flow_table) == 50
    # Waves 2-4: entirely new flows each period; old ones idle out.
    for wave in range(2, 5):
        for i in range(50):
            filt.decide(make_packet(src_port=wave * 1000 + i))
        filt.rule_update_tick(max_idle_epochs=1)
    # The table holds only the recent waves, not all 200 flows.
    assert len(filt.flow_table) <= 110


def test_eviction_preserves_connection_decisions():
    """The safety property: evict, re-observe, identical verdict."""
    filt = StatelessFilter(secret="s", mode=ConnectionPreservingMode.HYBRID)
    filt.install_rule(half_rule())
    packets = [make_packet(src_port=2000 + i) for i in range(80)]
    before = {p.five_tuple: filt.decide(p).allowed for p in packets}
    filt.rule_update_tick()
    # Idle everything out.
    for _ in range(3):
        filt.rule_update_tick(max_idle_epochs=0)
    assert len(filt.flow_table) == 0
    after = {p.five_tuple: filt.decide(p).allowed for p in packets}
    assert before == after


def test_enclave_filter_tick_with_eviction():
    from repro.core.enclave_filter import EnclaveFilter
    from repro.tee.enclave import Platform

    enclave = Platform("p").launch(EnclaveFilter(secret="s"))
    enclave.ecall("install_rules", [half_rule()])
    for i in range(20):
        enclave.ecall("process_packet", make_packet(src_port=3000 + i))
    enclave.ecall("rule_update_tick", None)
    used_with_table = enclave.epc.used
    for _ in range(3):
        enclave.ecall("rule_update_tick", 0)
    assert enclave.epc.used < used_with_table  # EPC charge shrank with eviction
