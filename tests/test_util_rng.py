"""Deterministic RNG and stable hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import deterministic_rng, stable_hash64


def test_rng_deterministic_across_instances():
    a = deterministic_rng("seed-x")
    b = deterministic_rng("seed-x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_rng_int_and_str_seeds_work():
    assert deterministic_rng(7).random() == deterministic_rng(7).random()
    assert deterministic_rng(b"bytes").random() == deterministic_rng(b"bytes").random()


def test_rng_different_seeds_differ():
    assert deterministic_rng("a").random() != deterministic_rng("b").random()


def test_stable_hash_is_stable():
    # Regression anchor: must never change across releases, or every sketch
    # comparison between old and new builds breaks.
    assert stable_hash64(b"hello") == stable_hash64("hello")
    assert stable_hash64("hello", salt="s1") != stable_hash64("hello", salt="s2")


def test_stable_hash_range():
    for i in range(100):
        assert 0 <= stable_hash64(str(i)) < 2**64


@given(st.binary(max_size=64), st.binary(max_size=16))
def test_stable_hash_deterministic(data, salt):
    assert stable_hash64(data, salt) == stable_hash64(data, salt)


@given(st.binary(min_size=1, max_size=64))
def test_stable_hash_salt_independence(data):
    # Different salts act like independent hash functions (the count-min
    # requirement): equality across two salts should be essentially never.
    assert stable_hash64(data, b"row-0") != stable_hash64(data, b"row-1")
