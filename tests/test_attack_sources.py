"""Synthetic attack-source populations."""

import pytest

from repro.interdomain.attack_sources import (
    dns_resolver_population,
    mirai_bot_population,
)
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet
from repro.interdomain.topology import Tier


SMALL = SyntheticInternetConfig(
    tier1_per_region=1, tier2_per_region=5, stubs_per_region=30, seed=4
)


def graph():
    g, _ = generate_internet(SMALL)
    return g


def test_resolver_population_totals_roughly_requested():
    g = graph()
    population = dns_resolver_population(g, total_resolvers=5000)
    total = sum(population.values())
    assert 0.8 * 5000 < total < 1.3 * 5000
    assert all(count >= 1 for count in population.values())


def test_resolvers_only_in_stub_or_tier2():
    g = graph()
    population = dns_resolver_population(g, total_resolvers=2000)
    for asn in population:
        assert g.nodes[asn].tier in (Tier.STUB, Tier.TIER2)


def test_resolver_population_heavy_tail():
    g = graph()
    population = dns_resolver_population(g, total_resolvers=30000)
    counts = sorted(population.values(), reverse=True)
    assert counts[0] > 4 * counts[len(counts) // 2]


def test_mirai_population_concentrates_in_hot_regions():
    g = graph()
    population = mirai_bot_population(g, total_bots=20000)
    hot = sum(
        count for asn, count in population.items()
        if g.nodes[asn].region in ("South America", "Asia Pacific")
    )
    total = sum(population.values())
    assert hot / total > 0.55


def test_mirai_population_only_in_stubs():
    g = graph()
    for asn in mirai_bot_population(g, total_bots=5000):
        assert g.nodes[asn].tier is Tier.STUB


def test_populations_deterministic():
    g = graph()
    assert dns_resolver_population(g, seed=1) == dns_resolver_population(g, seed=1)
    assert mirai_bot_population(g, seed=1) == mirai_bot_population(g, seed=1)
    assert dns_resolver_population(g, seed=1) != dns_resolver_population(g, seed=2)


def test_validation():
    g = graph()
    with pytest.raises(ValueError):
        dns_resolver_population(g, total_resolvers=0)
    with pytest.raises(ValueError):
        mirai_bot_population(g, total_bots=-1)
    with pytest.raises(ValueError):
        mirai_bot_population(g, hot_region_share=1.5)
