"""Neighbor-AS verification sessions over authenticated channels."""

import pytest

from repro.adversary import BypassConfig, MaliciousFilteringNetwork
from repro.core.controller import IXPController
from repro.core.neighbor import NeighborSession
from repro.core.rules import FilterRule, FlowPattern, RuleSet
from repro.errors import SecureChannelError, SessionError
from repro.tee.attestation import IASService
from tests.conftest import VICTIM_PREFIX, make_packet

AS_A, AS_B = 64500, 64501


def stand_up():
    ias = IASService()
    controller = IXPController(ias)
    controller.launch_filters(1)
    controller.install_single_filter(
        RuleSet(
            [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
                        p_allow=1.0)]
        )
    )
    return ias, controller


def packets_from(asn, count=30):
    return [
        make_packet(src_ip=f"10.{asn % 250}.{i}.1", ingress_as=asn)
        for i in range(count)
    ]


def test_attest_and_clean_audit():
    ias, controller = stand_up()
    neighbor = NeighborSession(AS_A, controller, ias)
    assert neighbor.attest_filters() == 1
    handed = packets_from(AS_A)
    neighbor.observe_handoffs(handed)
    controller.carry(handed)
    evidence = neighbor.audit_round()
    assert evidence.clean
    assert neighbor.audit_log == [evidence]


def test_detects_drop_before_filtering_against_itself_only():
    ias, controller = stand_up()
    neighbor_a = NeighborSession(AS_A, controller, ias)
    neighbor_b = NeighborSession(AS_B, controller, ias)
    neighbor_a.attest_filters()
    neighbor_b.attest_filters()

    network = MaliciousFilteringNetwork(
        controller, BypassConfig(drop_before_filtering={AS_A: 0.5})
    )
    a_packets = packets_from(AS_A)
    b_packets = packets_from(AS_B)
    neighbor_a.observe_handoffs(a_packets)
    neighbor_b.observe_handoffs(b_packets)
    network.carry(a_packets + b_packets)

    assert neighbor_a.audit_round().suspected_attacks == [
        "drop-before-filtering"
    ]
    assert neighbor_b.audit_round().clean


def test_incoming_log_requires_channel():
    ias, controller = stand_up()
    neighbor = NeighborSession(AS_A, controller, ias)
    with pytest.raises(SessionError):
        neighbor.fetch_incoming_log(0)
    # And directly at the ECall: no channel for this ASN.
    with pytest.raises(SecureChannelError, match="no channel"):
        controller.enclaves[0].ecall(
            "export_incoming_log_to_neighbor", AS_A, b"x" * 50
        )


def test_neighbors_cannot_query_the_outgoing_log():
    ias, controller = stand_up()
    neighbor = NeighborSession(AS_A, controller, ias)
    neighbor.attest_filters()
    channel = neighbor._channels[0]
    with pytest.raises(SecureChannelError, match="only query the incoming"):
        controller.enclaves[0].ecall(
            "export_incoming_log_to_neighbor",
            AS_A,
            channel.seal(b"outgoing"),
        )


def test_neighbor_channels_are_isolated_per_asn():
    """AS B cannot consume AS A's channel (sequence/keys differ)."""
    ias, controller = stand_up()
    neighbor_a = NeighborSession(AS_A, controller, ias)
    neighbor_b = NeighborSession(AS_B, controller, ias)
    neighbor_a.attest_filters()
    neighbor_b.attest_filters()
    request_from_a = neighbor_a._channels[0].seal(b"incoming")
    with pytest.raises(SecureChannelError):
        controller.enclaves[0].ecall(
            "export_incoming_log_to_neighbor", AS_B, request_from_a
        )


def test_scale_out_requires_reattestation():
    ias, controller = stand_up()
    neighbor = NeighborSession(AS_A, controller, ias)
    neighbor.attest_filters()
    controller.launch_filters(1)
    with pytest.raises(SessionError):
        neighbor.audit_round()  # enclave 1 has no channel yet
    assert neighbor.attest_filters() == 1
    handed = packets_from(AS_A, count=5)
    neighbor.observe_handoffs(handed)
    controller.carry(handed)
    assert neighbor.audit_round().clean
