"""Property tests for the streaming quantile sketch.

The sketch's contract (see ``repro/obs/quantile.py``): for values inside
``[bounds[0], bounds[-1]]`` the interpolated estimate's relative error
against the exact empirical quantile is at most :data:`MAX_RELATIVE_ERROR`
(one bucket's geometric width, ``10**(1/20) - 1`` under the default
layout) — *except* across a distribution discontinuity wider than one
bucket, where any histogram estimator snaps to one side of the jump (the
adversarial-spike test pins that behaviour instead of pretending the bound
holds there).  Merging is exact: bucket counts add, so any merge order is
indistinguishable from one sketch over the concatenated stream.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.quantile import (
    DEFAULT_QUANTILE_BOUNDS,
    MAX_RELATIVE_ERROR,
    StreamingQuantile,
    histogram_quantile,
    quantile_from_counts,
)

#: Float-noise slack on top of the documented bucket-width bound.
EPS = 1e-9


def exact_quantile(data, q):
    """Exact linear-interpolated empirical quantile (inclusive method,
    i.e. ``statistics.quantiles(data, n=..., method="inclusive")``)."""
    ordered = sorted(data)
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def _relative_error(estimate: float, truth: float) -> float:
    return abs(estimate - truth) / truth


def _assert_within_bound(sketch, data, qs=(0.5, 0.9, 0.99)):
    for q in qs:
        truth = exact_quantile(data, q)
        estimate = sketch.quantile(q)
        assert _relative_error(estimate, truth) <= MAX_RELATIVE_ERROR + EPS, (
            f"q={q}: estimate {estimate} vs exact {truth} exceeds "
            f"{MAX_RELATIVE_ERROR:.4f}"
        )


def test_exact_quantile_matches_statistics_module():
    # Sanity-check the reference implementation itself against stdlib.
    import statistics

    rng = random.Random("vif-quantile-ref")
    data = [rng.uniform(0.001, 5.0) for _ in range(999)]
    cuts = statistics.quantiles(data, n=100, method="inclusive")
    assert exact_quantile(data, 0.5) == pytest.approx(cuts[49])
    assert exact_quantile(data, 0.9) == pytest.approx(cuts[89])
    assert exact_quantile(data, 0.99) == pytest.approx(cuts[98])


def test_uniform_workload_within_documented_bound():
    rng = random.Random("vif-quantile-uniform")
    data = [rng.uniform(0.0005, 10.0) for _ in range(5000)]
    sketch = StreamingQuantile()
    sketch.observe_many(data)
    _assert_within_bound(sketch, data, qs=(0.5, 0.9, 0.99, 0.999))


def test_lognormal_workload_within_documented_bound():
    # Latency-shaped: median ~50ms with a heavy right tail.
    rng = random.Random("vif-quantile-lognormal")
    data = [rng.lognormvariate(-3.0, 1.5) for _ in range(5000)]
    assert max(data) <= DEFAULT_QUANTILE_BOUNDS[-1]  # tail stays in-range
    sketch = StreamingQuantile()
    sketch.observe_many(data)
    _assert_within_bound(sketch, data, qs=(0.5, 0.9, 0.99, 0.999))


def test_adversarial_spike_workload():
    # 99% fast (~1ms) + 1% stuck at 60s: quantiles on either side of the
    # jump keep the bound; a quantile *inside* the jump (p99 here) snaps
    # to the spike bucket — the conservative side for an alerting signal.
    rng = random.Random("vif-quantile-spikes")
    body = [rng.uniform(0.0008, 0.0012) for _ in range(4950)]
    spikes = [60.0] * 50
    data = body + spikes
    rng.shuffle(data)
    sketch = StreamingQuantile()
    sketch.observe_many(data)
    _assert_within_bound(sketch, data, qs=(0.5, 0.9))
    assert _relative_error(sketch.quantile(0.999), 60.0) <= (
        MAX_RELATIVE_ERROR + EPS
    )
    assert _relative_error(sketch.quantile(0.99), 60.0) <= (
        MAX_RELATIVE_ERROR + EPS
    )


def test_merge_is_associative_and_exact():
    rng = random.Random("vif-quantile-merge")
    shards = [
        [rng.lognormvariate(-4.0, 1.0) for _ in range(1000)]
        for _ in range(3)
    ]
    whole = StreamingQuantile()
    for shard in shards:
        whole.observe_many(shard)

    def sketch_of(values):
        s = StreamingQuantile()
        s.observe_many(values)
        return s

    a, b, c = (sketch_of(shard) for shard in shards)
    left = sketch_of([]).merge(sketch_of(shards[0])).merge(
        sketch_of(shards[1])
    ).merge(sketch_of(shards[2]))
    right = a.merge(b.merge(c))
    for merged in (left, right):
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for q in (0.5, 0.9, 0.99, 0.999):
            assert merged.quantile(q) == whole.quantile(q)


def test_merge_rejects_mismatched_layouts():
    with pytest.raises(ValueError, match="different bounds"):
        StreamingQuantile().merge(StreamingQuantile(bounds=(1.0, 2.0)))


def test_out_of_range_values_clamp():
    sketch = StreamingQuantile()
    sketch.observe(10_000.0)  # past the 100s top bound
    assert sketch.quantile(0.5) == DEFAULT_QUANTILE_BOUNDS[-1]
    assert sketch.max == 10_000.0  # min/max stay exact
    low = StreamingQuantile()
    low.observe(1e-9)  # below the 1µs bottom bound: interpolates toward 0
    assert 0.0 <= low.quantile(0.5) <= DEFAULT_QUANTILE_BOUNDS[0]


def test_empty_sketch_and_bad_q():
    sketch = StreamingQuantile()
    assert sketch.quantile(0.99) == 0.0
    assert sketch.quantiles() == {
        "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0
    }
    with pytest.raises(ValueError, match="within"):
        sketch.quantile(1.5)


def test_bucket_bound_quantizes_deterministically():
    sketch = StreamingQuantile()
    bound = sketch.bucket_bound(60.0)
    # Everything inside one bucket reports the same bound (journal
    # payloads stay byte-identical under measurement jitter)...
    assert sketch.bucket_bound(bound * 0.99) == bound
    # ...and the bound is within one bucket width of the raw value.
    assert _relative_error(bound, 60.0) <= MAX_RELATIVE_ERROR + EPS
    assert sketch.bucket_bound(1e12) == DEFAULT_QUANTILE_BOUNDS[-1]


def test_histogram_quantile_uses_existing_instrument():
    registry = MetricsRegistry()
    hist = registry.histogram(
        "vif_test_latency_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    rng = random.Random("vif-quantile-hist")
    data = [rng.uniform(0.002, 0.09) for _ in range(500)]
    for value in data:
        hist.observe(value)
    estimate = histogram_quantile(hist, 0.5)
    truth = exact_quantile(data, 0.5)
    # Coarse 10x buckets: the estimate lands in the truth's bucket.
    assert 0.01 < truth <= 0.1 and 0.01 <= estimate <= 0.1
    assert histogram_quantile(hist, 0.0) <= histogram_quantile(hist, 1.0)


def test_quantile_from_counts_overflow_clamps():
    bounds = (1.0, 2.0)
    counts = [0, 0, 5]  # all mass in the overflow slot
    assert quantile_from_counts(bounds, counts, 0.5) == 2.0
