"""Differential/property pinning of the tiered membership store.

The membership tier (Bloom pre-filter + cuckoo exact-confirm) is an
*optimization*: for every flow, a :class:`TieredRuleStore` must return the
byte-identical verdict a trie-only store holding the same rules would.
These tests drive both configurations through seeded random interleavings
of install / remove / query — sized so the tiny injected tier crosses
several adaptive resize boundaries mid-run — and through the sharded data
plane at 1 and 4 workers, and reject any divergence.

A second family pins the structural soundness properties the design leans
on: the Bloom pre-filter may false-positive (cuckoo confirm absorbs it)
but must never false-negative for a live key, and removals may leave ghost
bits set but must never un-set a live key's bits.
"""

from __future__ import annotations

import ipaddress

import pytest

from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Protocol
from repro.lookup.membership import MembershipRule, MembershipTier, TieredRuleStore
from repro.util import deterministic_rng

SECRET = "vif-membership-diff"
REQUESTER = "victim.example"

# Blocked sources live in 100.64.0.0/10; clean traffic in 198.51.100.0/24.
_BLOCK_BASE = 0x64400000
_SEEDS = [f"membership-diff/{i}" for i in range(10)]


def _src_rule(rule_id: int, src_int: int) -> FilterRule:
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(src_prefix=f"{ipaddress.ip_address(src_int)}/32"),
        action=Action.DROP,
        requested_by=REQUESTER,
    )


def _dst_rule(rule_id: int, octet: int) -> FilterRule:
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=f"203.0.{octet}.0/24"),
        action=Action.DROP,
        requested_by=REQUESTER,
    )


def _flow(src_int: int, dst_ip: str = "198.18.0.9", port: int = 4242) -> FiveTuple:
    return FiveTuple(
        src_ip=str(ipaddress.ip_address(src_int)),
        dst_ip=dst_ip,
        src_port=port,
        dst_port=80,
        protocol=Protocol.UDP,
    )


def _verdict(decision):
    """(allowed, winning rule id) — the byte-identity the tests pin."""
    rule = decision.rule
    return decision.allowed, (None if rule is None else rule.rule_id)


def _pair():
    """A tiered filter (tiny tier => frequent resizes) and its reference."""
    tiered = StatelessFilter(
        secret=SECRET, membership=MembershipTier(initial_capacity=16)
    )
    reference = StatelessFilter(secret=SECRET, membership_tier=False)
    return tiered, reference


def _query_mix(rng, live, removed, n=40):
    """Five-tuples probing live keys, removed keys, and clean traffic."""
    flows = []
    for _ in range(n):
        kind = rng.randrange(3)
        if kind == 0 and live:
            src = rng.choice(sorted(live))
        elif kind == 1 and removed:
            src = rng.choice(sorted(removed))
        else:
            src = 0xC6336400 + rng.randrange(256)  # 198.51.100.x clean
        flows.append(_flow(src, port=rng.randrange(1024, 65535)))
    return flows


@pytest.mark.parametrize("seed", _SEEDS)
def test_differential_interleaved_churn(seed):
    """10 seeded interleavings: tiered verdicts == trie-only verdicts.

    Each run installs/removes hundreds of /32 source rules (through tier
    resizes — the tier starts at capacity 16) interleaved with trie rules
    and verdict queries; any divergence at any point fails.
    """
    rng = deterministic_rng(seed)
    tiered, reference = _pair()
    live: dict = {}  # src_int -> rule_id
    removed: set = set()
    next_id = 1

    for step in range(12):
        n_install = rng.randrange(10, 60)
        for _ in range(n_install):
            src = _BLOCK_BASE + rng.randrange(4096)
            if src in live:
                continue
            rule = _src_rule(next_id, src)
            tiered.install_rule(rule)
            reference.install_rule(rule)
            live[src] = next_id
            removed.discard(src)
            next_id += 1
        # A couple of trie rules so both tiers stay exercised together.
        if rng.random() < 0.5:
            rule = _dst_rule(next_id, rng.randrange(256))
            tiered.install_rule(rule)
            reference.install_rule(rule)
            next_id += 1
        n_remove = rng.randrange(0, max(2, len(live) // 3))
        for src in rng.sample(sorted(live), min(n_remove, len(live))):
            rule_id = live.pop(src)
            tiered.remove_rule(rule_id)
            reference.remove_rule(rule_id)
            removed.add(src)
        for flow in _query_mix(rng, live, removed):
            got = _verdict(tiered.decide_flow(flow))
            want = _verdict(reference.decide_flow(flow))
            assert got == want, (
                f"seed={seed} step={step} flow={flow.src_ip}: "
                f"tiered={got} reference={want}"
            )

    stats = tiered.store.membership_stats()
    assert stats.resizes >= 1, "run never crossed a resize boundary"


@pytest.mark.parametrize("seed", _SEEDS[:3])
def test_differential_specificity_tiebreak(seed):
    """A /32 source rule and an overlapping trie rule tie-break identically.

    Trie rules more specific than the membership tier's /32 sources (an
    exact 5-tuple rule) and less specific ones (a /24 dst) both exist, so
    the cross-tier (specificity, rule_id) resolution is exercised from
    both sides.
    """
    rng = deterministic_rng(f"tiebreak/{seed}")
    tiered, reference = _pair()
    next_id = 1
    srcs = [_BLOCK_BASE + i for i in range(64)]
    for src in srcs:
        rule = _src_rule(next_id, src)
        tiered.install_rule(rule)
        reference.install_rule(rule)
        next_id += 1
    # Overlapping ALLOW-side trie rules: a broad dst and some exact flows.
    broad = FilterRule(
        rule_id=next_id,
        pattern=FlowPattern(dst_prefix="198.18.0.0/24"),
        action=Action.DROP,
        requested_by=REQUESTER,
    )
    next_id += 1
    tiered.install_rule(broad)
    reference.install_rule(broad)
    exact_flows = []
    for src in rng.sample(srcs, 8):
        flow = _flow(src)
        exact = FilterRule(
            rule_id=next_id,
            pattern=FlowPattern.exact(flow),
            action=Action.DROP,
            requested_by=REQUESTER,
        )
        next_id += 1
        tiered.install_rule(exact)
        reference.install_rule(exact)
        exact_flows.append(flow)
    probes = exact_flows + [_flow(src) for src in srcs]
    probes += _query_mix(rng, set(srcs), set())
    for flow in probes:
        assert _verdict(tiered.decide_flow(flow)) == _verdict(
            reference.decide_flow(flow)
        )


@pytest.mark.parametrize("workers", [1, 4])
def test_differential_shard_workers(workers):
    """Shard workers seeded with a blocklist match the in-process reference."""
    from repro.dataplane.packet import Packet
    from repro.dataplane.shard import (
        ShardedDataPlane,
        run_single_process_reference,
    )

    rng = deterministic_rng(f"membership-shard/{workers}")
    blocklist = [(10_000_000 + i, _BLOCK_BASE + i) for i in range(1500)]
    rules = [_dst_rule(1, 113)]
    packets = []
    for _ in range(300):
        kind = rng.randrange(3)
        if kind == 0:
            src = _BLOCK_BASE + rng.randrange(1500)  # blocked
        elif kind == 1:
            src = _BLOCK_BASE + 1500 + rng.randrange(1500)  # near-miss
        else:
            src = 0xC6336400 + rng.randrange(256)  # clean
        dst = "203.0.113.7" if rng.random() < 0.3 else "198.18.0.9"
        packets.append(Packet(five_tuple=_flow(
            src, dst_ip=dst, port=rng.randrange(1024, 65535))))

    plane = ShardedDataPlane(
        rules=rules,
        num_workers=workers,
        decision_secret=SECRET,
        blocklist=blocklist,
    )
    with plane:
        verdicts = plane.process(packets)
        sharded = plane.finish()
    reference = run_single_process_reference(
        rules, packets, decision_secret=SECRET, blocklist=blocklist
    )
    assert verdicts == reference.verdicts
    assert sharded.incoming.bins() == reference.incoming.bins()
    assert sharded.outgoing.bins() == reference.outgoing.bins()
    # Sanity: the trace actually hit blocked sources.
    assert sharded.packets_dropped > 0


@pytest.mark.parametrize("seed", _SEEDS[:5])
def test_bloom_never_false_negative(seed):
    """Every live key answers True at the Bloom pre-filter, always.

    Run through churn and resizes: a false positive is absorbed by the
    cuckoo confirm, but a false negative would silently un-block a source.
    """
    rng = deterministic_rng(f"bloom-fn/{seed}")
    tier = MembershipTier(initial_capacity=16)
    live: dict = {}
    next_id = 1
    for _ in range(8):
        for _ in range(rng.randrange(20, 80)):
            src = _BLOCK_BASE + rng.randrange(8192)
            if src in live:
                continue
            tier.insert(MembershipRule(next_id, src))
            live[src] = next_id
            next_id += 1
        for src in rng.sample(sorted(live), rng.randrange(0, len(live) // 2 + 1)):
            tier.remove(live.pop(src))
        for src, rule_id in live.items():
            assert tier.might_contain(src), (
                f"Bloom false negative for live key {src:#x} (seed={seed})"
            )
            hit = tier.query(src)
            assert hit is not None and hit.rule_id == rule_id


def test_store_verdict_after_forced_resizes():
    """Forcing successive rebuilds never changes a verdict (memo cleared)."""
    tiered, reference = _pair()
    srcs = [_BLOCK_BASE + i for i in range(500)]
    for i, src in enumerate(srcs):
        rule = _src_rule(i + 1, src)
        tiered.install_rule(rule)
        reference.install_rule(rule)
    tier = tiered.store.membership
    assert tier.stats().resizes >= 1  # 500 entries through capacity 16
    before = [tiered.decide_flow(_flow(src)).allowed for src in srcs]
    tier._rebuild(2048)  # explicit rebuild, content unchanged
    after = [tiered.decide_flow(_flow(src)).allowed for src in srcs]
    assert before == after == [
        reference.decide_flow(_flow(src)).allowed for src in srcs
    ]


def test_tiered_store_find_and_rules_match_reference():
    """find_rule / rules() agree across tiers (materialized /32 patterns)."""
    store = TieredRuleStore(membership=MembershipTier(initial_capacity=16))
    trie_only = TieredRuleStore(membership_enabled=False)
    rules = [_src_rule(i + 1, _BLOCK_BASE + i) for i in range(40)]
    rules.append(_dst_rule(100, 113))
    for rule in rules:
        store.insert(rule)
        trie_only.insert(rule)
    assert len(store) == len(trie_only) == len(rules)
    got = {r.rule_id: r.pattern.src_prefix for r in store.rules()}
    want = {r.rule_id: r.pattern.src_prefix for r in trie_only.rules()}
    assert got == want
    for rule in rules:
        found = store.find_rule(rule.rule_id)
        assert found is not None
        assert found.pattern.src_prefix == rule.pattern.src_prefix
