"""AS graph structure."""

import pytest

from repro.errors import TopologyError
from repro.interdomain.topology import ASGraph, Tier


def triangle() -> ASGraph:
    g = ASGraph()
    g.add_as(1, "Europe", Tier.TIER1)
    g.add_as(2, "Europe", Tier.TIER2)
    g.add_as(3, "Europe", Tier.STUB)
    g.add_p2c(1, 2)
    g.add_p2c(2, 3)
    return g


def test_add_and_query():
    g = triangle()
    assert len(g) == 3
    assert 2 in g and 9 not in g
    assert g.providers[2] == {1}
    assert g.customers[1] == {2}
    assert g.neighbors(2) == {1, 3}
    assert g.degree(2) == 2
    assert g.num_edges() == 2


def test_duplicate_as_rejected():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_as(1, "Europe", Tier.TIER1)


def test_self_relationships_rejected():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_p2c(1, 1)
    with pytest.raises(TopologyError):
        g.add_p2p(1, 1)


def test_conflicting_relationships_rejected():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_p2p(1, 2)  # already p2c
    g.add_p2p(1, 3)
    with pytest.raises(TopologyError):
        g.add_p2c(1, 3)  # already p2p
    with pytest.raises(TopologyError):
        g.add_p2c(2, 1)  # reverse of existing p2c


def test_unknown_as_rejected():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_p2c(1, 99)
    with pytest.raises(TopologyError):
        g.degree(99)


def test_peering_ixps_recorded():
    g = triangle()
    g.add_p2p(1, 3, ixp_id="ixp-a")
    g.add_p2p(1, 3, ixp_id="ixp-b")  # multi-IXP peering
    assert g.edge_ixps(1, 3) == {"ixp-a", "ixp-b"}
    assert g.edge_ixps(3, 1) == {"ixp-a", "ixp-b"}
    assert g.edge_ixps(1, 2) == set()


def test_tier_and_region_queries():
    g = triangle()
    assert g.ases_by_tier(Tier.STUB) == [3]
    assert g.ases_by_region("Europe") == [1, 2, 3]
    assert g.ases() == [1, 2, 3]


def test_without_as_removes_node_and_edges():
    g = triangle()
    g.add_p2p(1, 3, ixp_id="x")
    clone = g.without_as(2)
    assert 2 not in clone
    assert clone.providers[3] == set()
    assert clone.edge_ixps(1, 3) == {"x"}
    # The original is untouched.
    assert 2 in g and g.providers[3] == {2}


def test_validate_clean_graph():
    assert triangle().validate() == []


def test_validate_detects_provider_cycle():
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn, "Europe", Tier.TIER2)
    # Build a provider cycle by editing internals (the public API forbids
    # only direct two-node conflicts).
    g.customers[1].add(2)
    g.providers[2].add(1)
    g.customers[2].add(3)
    g.providers[3].add(2)
    g.customers[3].add(1)
    g.providers[1].add(3)
    assert any("cycle" in p for p in g.validate())


def test_validate_detects_unmirrored_edge():
    g = triangle()
    g.customers[1].add(3)  # corrupt: forward edge without the mirror
    assert any("not mirrored" in p for p in g.validate())
