"""Units and line-rate math."""

import pytest

from repro.util.units import (
    GBPS,
    bits_to_gbps,
    ethernet_frame_overhead_bytes,
    gbps_to_pps,
    line_rate_pps,
    pps_to_gbps,
)


def test_line_rate_64b_is_14_88_mpps():
    # The canonical 10 GbE small-packet line rate.
    assert line_rate_pps(64) == pytest.approx(14_880_952, rel=1e-4)


def test_line_rate_1500b():
    assert line_rate_pps(1500) == pytest.approx(10e9 / (1520 * 8), rel=1e-9)


def test_line_rate_scales_with_link_speed():
    assert line_rate_pps(64, link_bps=40 * GBPS) == pytest.approx(
        4 * line_rate_pps(64), rel=1e-9
    )


def test_line_rate_rejects_bad_size():
    with pytest.raises(ValueError):
        line_rate_pps(0)
    with pytest.raises(ValueError):
        line_rate_pps(-5)


def test_pps_gbps_roundtrip():
    pps = 3_000_000.0
    assert gbps_to_pps(pps_to_gbps(pps, 512), 512) == pytest.approx(pps)


def test_gbps_to_pps_rejects_bad_size():
    with pytest.raises(ValueError):
        gbps_to_pps(1.0, 0)


def test_bits_to_gbps():
    assert bits_to_gbps(10e9) == pytest.approx(10.0)


def test_frame_overhead_is_20_bytes():
    # preamble 7 + SFD 1 + IFG 12
    assert ethernet_frame_overhead_bytes() == 20


def test_wire_rate_at_line_rate_is_link_speed():
    # pps * (size + overhead) * 8 == link for any size at line rate.
    for size in (64, 128, 512, 1500):
        pps = line_rate_pps(size)
        assert pps * (size + 20) * 8 == pytest.approx(10e9, rel=1e-9)
