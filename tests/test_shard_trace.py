"""Cross-process trace propagation: worker spans merge into one timeline.

Worker processes record their own ``shard.batch`` spans (stamped with the
worker process's real pid), export them through the same state channel the
metrics registry already uses, and the coordinator merges every batch into
its ambient tracer — so one Chrome-trace JSON shows one lane per worker
process plus the coordinator's own spans.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import obs
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.shard import ShardedDataPlane
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_STATE_SCHEMA, Tracer


@pytest.fixture
def traced_obs():
    prev_registry = obs.set_registry(MetricsRegistry())
    prev_tracer = obs.set_tracer(Tracer(enabled=True))
    yield obs.get_tracer()
    obs.set_registry(prev_registry)
    obs.set_tracer(prev_tracer)


# -- export/merge unit behaviour ----------------------------------------------


def test_export_state_merge_state_remaps_span_ids(traced_obs):
    donor = Tracer(enabled=True)
    with donor.span("donor.parent"):
        with donor.span("donor.child"):
            pass
    state = donor.export_state()
    assert state["schema"] == TRACE_STATE_SCHEMA

    with traced_obs.span("local.existing"):
        pass
    merged = traced_obs.merge_state(state)
    assert merged == 2

    records = {r.name: r for r in traced_obs.records}
    assert set(records) == {"local.existing", "donor.parent", "donor.child"}
    span_ids = [r.span_id for r in traced_obs.records]
    assert len(span_ids) == len(set(span_ids))  # fresh local ids, no clashes
    assert records["donor.child"].parent_id == records["donor.parent"].span_id
    assert records["donor.parent"].parent_id is None
    # The donor's pid/tid stamps survive the merge verbatim.
    assert records["donor.parent"].pid == os.getpid()


def test_merge_state_foreign_parent_becomes_root(traced_obs):
    donor = Tracer(enabled=True)
    with donor.span("outer"):
        with donor.span("inner"):
            pass
    state = donor.export_state()
    # Ship only the child: its parent is not part of the batch, so the
    # merged record must become a root instead of pointing at a random
    # local span id.
    state["spans"] = [s for s in state["spans"] if s["name"] == "inner"]
    traced_obs.merge_state(state)
    (record,) = traced_obs.records
    assert record.name == "inner"
    assert record.parent_id is None


def test_merge_state_rejects_foreign_schema(traced_obs):
    with pytest.raises(ValueError, match="schema"):
        traced_obs.merge_state({"schema": "bogus", "spans": []})


# -- the 4-worker integration lane check --------------------------------------


def _rules(n: int = 8):
    return [
        FilterRule(
            rule_id=i + 1,
            pattern=FlowPattern(dst_prefix=f"10.0.{i}.0/24"),
            action=Action.DROP if i % 2 else Action.ALLOW,
        )
        for i in range(n)
    ]


def _packets(rng: random.Random, num_flows: int, count: int):
    flows = [
        FiveTuple(
            src_ip=f"172.16.{rng.randrange(16)}.{rng.randrange(256)}",
            dst_ip=f"10.0.{rng.randrange(8)}.{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice([80, 443]),
            protocol=Protocol.TCP,
        )
        for _ in range(num_flows)
    ]
    return [
        Packet(five_tuple=rng.choice(flows), size=64) for _ in range(count)
    ]


def test_four_worker_run_merges_into_distinct_pid_lanes(traced_obs):
    rng = random.Random("shard-trace-lanes")
    plane = ShardedDataPlane(
        _rules(),
        num_workers=4,
        batch_size=64,
        trace_spans=True,
    )
    with plane:
        with traced_obs.span("coordinator.run"):
            plane.process(_packets(rng, num_flows=64, count=1200))
        plane.finish()

    doc = traced_obs.to_chrome_trace()
    batches = [e for e in doc["traceEvents"] if e["name"] == "shard.batch"]
    assert batches, "workers recorded no batch spans"

    # One lane per worker process: >= 4 distinct pids, none of them ours.
    pids = {e["pid"] for e in batches}
    assert len(pids) >= 4
    assert os.getpid() not in pids
    # Every worker contributed (RSS-sharding spreads 64 flows over 4).
    assert {e["args"]["worker"] for e in batches} == {0, 1, 2, 3}
    # The coordinator's own span sits in its own lane of the same doc.
    coord = next(
        e for e in doc["traceEvents"] if e["name"] == "coordinator.run"
    )
    assert coord["pid"] == os.getpid()
    # Worker spans carry their flow counts (args survive the merge).
    assert all(e["args"]["flows"] >= 1 for e in batches)


def test_untraced_plane_ships_no_span_state(traced_obs):
    rng = random.Random("shard-trace-off")
    plane = ShardedDataPlane(
        _rules(), num_workers=2, batch_size=64, trace_spans=False
    )
    with plane:
        plane.process(_packets(rng, num_flows=16, count=200))
        plane.finish()
    assert [r.name for r in traced_obs.records] == []
