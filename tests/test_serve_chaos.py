"""Chaos acceptance for the serve runtime: seeded faults, lossless drains.

The PR's acceptance gate lives here: under a seeded
:class:`~repro.faults.schedule.FaultSchedule` mixing worker kills, stage
hangs, IAS flakes and rule-churn storms, the service must keep serving
(the watchdog restarts what died), and a graceful drain must account for
every packet — ``ingested == allowed + dropped + unrouted + shed`` with
zero unaccounted.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.controller import IXPController
from repro.core.fleet import FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RPKIRegistry, RuleSet
from repro.core.session import VIFSession
from repro.dataplane.shard import ShardedDataPlane
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultSchedule, FlakyIAS
from repro.faults.injector import FaultInjector
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    FleetBackend,
    PktgenSource,
    ServeChaosDriver,
    ServeConfig,
    ServeService,
    ServeState,
    ShardBackend,
)
from repro.util.units import GBPS

VICTIM = "victim.example"


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.set_registry(MetricsRegistry())
    journal = obs.set_journal(EventJournal(enabled=True))
    yield obs.get_journal()
    obs.set_registry(registry)
    obs.set_journal(journal)


def _rules(count: int = 6, rate_bps: float = 2.0 * GBPS) -> RuleSet:
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{100 + i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by=VICTIM,
                rate_bps=rate_bps,
            )
        )
    return rules


async def _run_to_exhaustion(service: ServeService, timeout: float = 60.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not service._source_exhausted:
        if service.state is ServeState.FAILED:
            break
        assert asyncio.get_running_loop().time() < deadline, "service stalled"
        await asyncio.sleep(0.005)
    return await service.drain()


# -- the acceptance gate: sharded backend under the full chaos mix ------------


def test_shard_backend_survives_kill_hang_and_churn_storm(fresh_obs):
    """Worker kill + filter-stage hang + rule-churn storm, drained lossless.

    This is the scenario ISSUE.md gates the PR on: the watchdog (or the
    plane's own death-recovery) restarts the killed worker while the
    service keeps serving, the hung stage is cancelled and resumes its
    burst, churn rides the control plane between bursts, and the final
    drain accounts for every packet.
    """
    bursts = 25
    ruleset = _rules()
    schedule = FaultSchedule(
        rounds=bursts,
        events=(
            FaultEvent(round_index=4, kind=FaultKind.WORKER_KILL, target=0),
            FaultEvent(
                round_index=10, kind=FaultKind.STAGE_HANG, target=1, magnitude=1
            ),
            FaultEvent(round_index=16, kind=FaultKind.RULE_CHURN, magnitude=3),
        ),
        seed="serve-chaos-gate",
    )
    driver = ServeChaosDriver(schedule)
    source = PktgenSource(
        ruleset.rules(), packets_per_rule=3, background_packets=2,
        total_bursts=bursts,
    )
    plane = ShardedDataPlane(
        ruleset.rules(),
        num_workers=2,
        decision_secret="vif-serve-chaos",
        restart_dead_workers=True,
    )
    backend = ShardBackend(plane)

    async def scenario():
        service = ServeService(
            source,
            backend,
            # queue_depth >= bursts: ingest never blocks, so any packet
            # "loss" would have to show up as unaccounted, not shed.
            ServeConfig(
                queue_depth=bursts + 1,
                shed_timeout_s=0.1,
                heartbeat_deadline_s=0.75,
                watchdog_interval_s=0.02,
                restart_backoff_base_s=0.01,
            ),
            chaos=driver,
        )
        driver.bind(service)
        await service.start()
        report = await _run_to_exhaustion(service)
        return service, report

    service, report = asyncio.run(scenario())
    assert report.state == "drained"
    # Lossless: every ingested packet is accounted, nothing shed.
    assert report.ingested == bursts * (6 * 3 + 2)
    assert report.shed == 0
    assert report.unaccounted == 0
    assert report.allowed + report.dropped == report.ingested
    # The killed worker came back (plane restart budget consumed once)
    # and the service kept serving through it.
    assert sum(plane._worker_restarts) == 1
    # The hang was detected and the filter stage restarted, resuming its
    # in-flight burst instead of losing it.
    assert service.stage_restarts["filter"] == 1
    # The storm applied 3 installs + 3 removals through the control plane.
    assert report.rule_updates == 6
    assert len(driver.applied) == 3
    fired = [e.payload["kind"] for e in fresh_obs.of_type("fault_injected")]
    assert sorted(fired) == ["rule-churn", "stage-hang", "worker-kill"]
    assert obs.get_registry().check_invariants() == []


def test_shard_backend_generated_schedule_replays_deterministically():
    """The same seed drives the same chaos; the drain is lossless anyway."""
    bursts = 15
    schedule = FaultSchedule.generate_serve(
        seed="serve-replay",
        bursts=bursts,
        workers=2,
        worker_kill_prob=0.1,
        stage_hang_prob=0.0,  # hangs are slow; covered by the gate above
        rule_churn_prob=0.15,
        churn_size=2,
    )
    again = FaultSchedule.generate_serve(
        seed="serve-replay",
        bursts=bursts,
        workers=2,
        worker_kill_prob=0.1,
        stage_hang_prob=0.0,
        rule_churn_prob=0.15,
        churn_size=2,
    )
    assert schedule.events == again.events
    assert schedule.events, "seed must produce at least one event"

    ruleset = _rules(4)
    source = PktgenSource(
        ruleset.rules(), packets_per_rule=2, background_packets=2,
        total_bursts=bursts,
    )
    plane = ShardedDataPlane(
        ruleset.rules(), num_workers=2, restart_dead_workers=True
    )
    driver = ServeChaosDriver(schedule)

    async def scenario():
        service = ServeService(
            source,
            ShardBackend(plane),
            ServeConfig(
                queue_depth=bursts + 1,
                shed_timeout_s=0.1,
                heartbeat_deadline_s=0.75,
                watchdog_interval_s=0.02,
            ),
            chaos=driver,
        )
        driver.bind(service)
        await service.start()
        return await _run_to_exhaustion(service)

    report = asyncio.run(scenario())
    assert report.state == "drained"
    assert report.unaccounted == 0
    assert report.shed == 0
    kills = [e for e in schedule.events if e.kind is FaultKind.WORKER_KILL]
    assert sum(plane._worker_restarts) == len(kills)
    assert len(driver.applied) == len(schedule.events)
    assert obs.get_registry().check_invariants() == []


# -- fleet backend: churn storms re-attest through a flaky IAS ----------------


def test_fleet_backend_churn_reattests_through_ias_outage(fresh_obs):
    """An IAS flake armed right before a churn storm: the hot installs'
    re-attestation rides the fleet's bounded retry/backoff and succeeds."""
    bursts = 12
    ias = FlakyIAS()
    controller = IXPController(ias)
    fleet = FleetManager(controller, config=FleetConfig(seed="serve-fleet"))
    ruleset = _rules(6)
    fleet.deploy(ruleset, enclaves_override=3)
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, "203.0.0.0/16")
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    fleet.session = session

    schedule = FaultSchedule(
        rounds=bursts,
        events=(
            FaultEvent(round_index=2, kind=FaultKind.IAS_OUTAGE, magnitude=2),
            FaultEvent(round_index=4, kind=FaultKind.RULE_CHURN, magnitude=2),
        ),
        seed="serve-fleet-chaos",
    )
    driver = ServeChaosDriver(schedule, ias=ias)
    source = PktgenSource(
        ruleset.rules(), packets_per_rule=2, background_packets=2,
        total_bursts=bursts,
    )

    async def scenario():
        service = ServeService(
            source,
            FleetBackend(fleet),
            ServeConfig(
                queue_depth=bursts + 1,
                shed_timeout_s=0.1,
                heartbeat_deadline_s=0.75,
                watchdog_interval_s=0.02,
            ),
            chaos=driver,
        )
        driver.bind(service)
        await service.start()
        return await _run_to_exhaustion(service)

    report = asyncio.run(scenario())
    assert report.state == "drained"
    assert report.unaccounted == 0
    assert report.rule_updates == 4  # 2 installs + 2 removals
    # Background packets matched no rule: forwarded on the default path.
    assert report.unrouted == bursts * 2
    # The armed outage forced the churn re-attestation onto the retry path.
    assert fleet.counters.attestation_retries > 0
    # FleetBackend journals its own rule_update events (with slot detail).
    updates = fresh_obs.of_type("rule_update")
    assert [e.payload["action"] for e in updates] == [
        "install", "install", "remove", "remove",
    ]
    assert obs.get_registry().check_invariants() == []


# -- scoping: serve faults and round faults stay on their own replay paths ---


def test_fault_injector_rejects_serve_scoped_kinds():
    ias = FlakyIAS()
    controller = IXPController(ias)
    fleet = FleetManager(controller)
    fleet.deploy(_rules(4), enclaves_override=2)
    injector = FaultInjector(fleet, ias=ias)
    for kind in (FaultKind.WORKER_KILL, FaultKind.STAGE_HANG, FaultKind.RULE_CHURN):
        with pytest.raises(ConfigurationError, match="serve-scoped"):
            injector.apply(FaultEvent(round_index=0, kind=kind))


def test_chaos_driver_rejects_round_scoped_kinds_and_missing_bindings():
    schedule = FaultSchedule(
        rounds=2,
        events=(FaultEvent(round_index=0, kind=FaultKind.CRASH, target=0),),
    )
    driver = ServeChaosDriver(schedule)
    with pytest.raises(ConfigurationError, match="not bound"):
        asyncio.run(driver("ingest", 0))

    class _FakeService:
        backend = object()
        config = ServeConfig()

        async def install_rule(self, rule):  # pragma: no cover - not reached
            pass

    driver.bind(_FakeService())
    with pytest.raises(ConfigurationError, match="round-scoped"):
        asyncio.run(driver("ingest", 0))

    kill = ServeChaosDriver(
        FaultSchedule(
            rounds=1,
            events=(FaultEvent(round_index=0, kind=FaultKind.WORKER_KILL),),
        )
    ).bind(_FakeService())
    with pytest.raises(ConfigurationError, match="kill_worker"):
        asyncio.run(kill("ingest", 0))

    flake = ServeChaosDriver(
        FaultSchedule(
            rounds=1,
            events=(FaultEvent(round_index=0, kind=FaultKind.IAS_OUTAGE),),
        )
    ).bind(_FakeService())
    with pytest.raises(ConfigurationError, match="FlakyIAS"):
        asyncio.run(flake("ingest", 0))


def test_generate_serve_is_seeded_and_bounded():
    schedule = FaultSchedule.generate_serve(
        seed="gen", bursts=50, workers=4,
        worker_kill_prob=0.2, stage_hang_prob=0.2, rule_churn_prob=0.2,
        ias_outage_prob=0.2,
    )
    assert schedule.rounds == 50
    serve_kinds = {
        FaultKind.WORKER_KILL, FaultKind.STAGE_HANG,
        FaultKind.RULE_CHURN, FaultKind.IAS_OUTAGE,
    }
    assert schedule.events
    for event in schedule.events:
        assert 0 <= event.round_index < 50
        assert event.kind in serve_kinds
        if event.kind is FaultKind.WORKER_KILL:
            assert 0 <= event.target < 4
    other = FaultSchedule.generate_serve(
        seed="gen-2", bursts=50, workers=4,
        worker_kill_prob=0.2, stage_hang_prob=0.2, rule_churn_prob=0.2,
        ias_outage_prob=0.2,
    )
    assert other.events != schedule.events
    with pytest.raises(ConfigurationError, match="workers"):
        FaultSchedule.generate_serve(seed="gen", bursts=5, workers=0)
    quiet = FaultSchedule.generate_serve(
        seed="gen", bursts=10, workers=1,
        worker_kill_prob=0.0, stage_hang_prob=0.0, rule_churn_prob=0.0,
    )
    assert quiet.events == ()
