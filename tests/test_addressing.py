"""AS address ownership."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TopologyError
from repro.interdomain.addressing import (
    asn_of_ip,
    host_ip,
    materialize_sources,
    prefix_of,
)
from repro.interdomain.attack_sources import mirai_bot_population
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet


def test_prefix_encoding():
    assert prefix_of(1) == "1.1.0.0/16"
    assert prefix_of(256) == "2.0.0.0/16"


def test_prefixes_disjoint():
    prefixes = {prefix_of(asn) for asn in range(1, 2000)}
    assert len(prefixes) == 1999


def test_roundtrip_ip_to_asn():
    for asn in (1, 77, 1010, 5000):
        assert asn_of_ip(host_ip(asn, 12)) == asn


def test_out_of_space_ips_map_to_none():
    assert asn_of_ip("0.1.2.3") is None
    assert asn_of_ip("230.0.0.1") is None


def test_first_octet_stays_unicast():
    from ipaddress import ip_network

    for asn in (1, 1000, 10_000, 50_000):
        first = int(prefix_of(asn).split(".")[0])
        assert 1 <= first <= 223
        ip_network(prefix_of(asn))  # parses


def test_bounds_validation():
    with pytest.raises(ConfigurationError):
        prefix_of(0)
    with pytest.raises(ConfigurationError):
        prefix_of(10**7)
    with pytest.raises(ConfigurationError):
        host_ip(1, 70_000)


@given(st.integers(min_value=1, max_value=50_000),
       st.integers(min_value=0, max_value=65_533))
def test_roundtrip_property(asn, host_index):
    assert asn_of_ip(host_ip(asn, host_index)) == asn


def test_materialize_sources():
    graph, _ = generate_internet(
        SyntheticInternetConfig(tier1_per_region=1, tier2_per_region=3,
                                stubs_per_region=10, seed=2)
    )
    population = mirai_bot_population(graph, total_bots=500)
    ips = materialize_sources(graph, population, max_per_as=20)
    assert set(ips) == set(population)
    for asn, addrs in ips.items():
        assert 1 <= len(addrs) <= 20
        assert len(set(addrs)) == len(addrs)  # distinct hosts
        assert all(asn_of_ip(a) == asn for a in addrs)


def test_materialize_rejects_unknown_as():
    graph, _ = generate_internet(
        SyntheticInternetConfig(tier1_per_region=1, tier2_per_region=3,
                                stubs_per_region=10, seed=2)
    )
    with pytest.raises(TopologyError):
        materialize_sources(graph, {999_999: 5})


def test_materialize_deterministic():
    graph, _ = generate_internet(
        SyntheticInternetConfig(tier1_per_region=1, tier2_per_region=3,
                                stubs_per_region=10, seed=2)
    )
    population = mirai_bot_population(graph, total_bots=200)
    assert materialize_sources(graph, population, seed=4) == materialize_sources(
        graph, population, seed=4
    )
