"""Hot rule updates and lifecycle hardening on the sharded data plane.

The property at stake (PR 7 satellite): interleaving ``install_rule`` /
``remove_rule`` with ``process`` calls mid-stream must leave the plane
serving verdicts equivalent to a *fresh* filter built from the final rule
set — rule deltas are ordered between batches (FIFO task queues + acked
broadcast), never splice into one.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.shard import ShardedDataPlane, run_single_process_reference
from repro.errors import ConfigurationError

REQUESTER = "victim.example"
SECRET = "vif-hot-rules"


def _rule(rule_id: int, octet: int, action: Action = Action.DROP) -> FilterRule:
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=f"203.0.{octet}.0/24"),
        action=action,
        requested_by=REQUESTER,
    )


def _trace(rng: random.Random, octets, packets: int):
    out = []
    for _ in range(packets):
        out.append(
            Packet(
                five_tuple=FiveTuple(
                    src_ip=f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                    dst_ip=f"203.0.{rng.choice(octets)}.{rng.randrange(1, 255)}",
                    src_port=rng.randrange(1024, 65535),
                    dst_port=80,
                    protocol=Protocol.TCP,
                )
            )
        )
    return out


@pytest.mark.parametrize("workers", [1, 4])
def test_interleaved_deltas_match_fresh_filter_from_final_ruleset(workers):
    """The satellite property, at 1 and 4 shard workers.

    A scripted interleave of process / install / remove; after the final
    delta, one more trace must be adjudicated exactly as a fresh filter
    holding only the final rule set would adjudicate it.
    """
    rng = random.Random("hot-rules-final")
    initial = [_rule(1, 100), _rule(2, 101, Action.ALLOW), _rule(3, 102)]
    octets = [100, 101, 102, 103, 104, 110]

    with ShardedDataPlane(
        initial, num_workers=workers, decision_secret=SECRET, batch_size=32
    ) as plane:
        plane.process(_trace(rng, octets, 120))
        plane.install_rule(_rule(4, 103))               # new DROP rule
        plane.process(_trace(rng, octets, 120))
        plane.remove_rule(2)                            # retract an ALLOW
        plane.install_rule(_rule(5, 104, Action.ALLOW))
        plane.process(_trace(rng, octets, 120))
        plane.remove_rule(1)
        assert plane.ruleset_version == 4

        final_trace = _trace(rng, octets, 200)
        got = plane.process(final_trace)

    final_rules = [_rule(3, 102), _rule(4, 103), _rule(5, 104, Action.ALLOW)]
    reference = run_single_process_reference(
        final_rules, final_trace, decision_secret=SECRET
    )
    assert got == reference.verdicts


@pytest.mark.parametrize("workers", [1, 4])
def test_random_delta_schedule_matches_final_ruleset(workers):
    """Randomized interleave (seeded): same equivalence, harder schedule."""
    rng = random.Random(f"hot-rules-random-{workers}")
    octets = list(range(100, 112))
    live = {}
    next_id = 1

    with ShardedDataPlane(
        [], num_workers=workers, decision_secret=SECRET, batch_size=16
    ) as plane:
        for _ in range(12):
            op = rng.random()
            if op < 0.4 or not live:
                action = Action.DROP if rng.random() < 0.7 else Action.ALLOW
                rule = _rule(next_id, rng.choice(octets), action)
                plane.install_rule(rule)
                live[next_id] = rule
                next_id += 1
            elif op < 0.6:
                victim = rng.choice(sorted(live))
                plane.remove_rule(victim)
                del live[victim]
            else:
                plane.process(_trace(rng, octets, 60))
        final_trace = _trace(rng, octets, 150)
        got = plane.process(final_trace)

    reference = run_single_process_reference(
        [live[rid] for rid in sorted(live)],
        final_trace,
        decision_secret=SECRET,
    )
    assert got == reference.verdicts


def test_delta_requires_running_plane():
    plane = ShardedDataPlane([_rule(1, 100)], num_workers=1)
    with pytest.raises(ConfigurationError, match="not running"):
        plane.install_rule(_rule(2, 101))


# -- lifecycle hardening (PR 7 satellite: finish()/close() paths) -------------


class TestFinishCloseHardening:
    def test_finish_after_close_fails_clearly_instead_of_hanging(self):
        plane = ShardedDataPlane([_rule(1, 100)], num_workers=2)
        plane.start()
        plane.process(_trace(random.Random(1), [100, 101], 40))
        plane.close()
        with pytest.raises(ConfigurationError, match="close"):
            plane.finish()

    def test_double_finish_fails_clearly(self):
        plane = ShardedDataPlane([_rule(1, 100)], num_workers=1)
        plane.start()
        plane.process(_trace(random.Random(2), [100], 20))
        plane.finish()
        with pytest.raises(ConfigurationError, match="already finished"):
            plane.finish()

    def test_finish_before_start_fails_clearly(self):
        plane = ShardedDataPlane([_rule(1, 100)], num_workers=1)
        with pytest.raises(ConfigurationError):
            plane.finish()

    def test_close_is_idempotent_and_leaves_no_workers(self):
        plane = ShardedDataPlane([_rule(1, 100)], num_workers=2)
        plane.start()
        workers = list(plane._workers)
        plane.close()
        plane.close()  # second close is a no-op
        assert all(not w.is_alive() for w in workers)
        assert plane._workers == []

    def test_context_manager_exit_after_finish_is_clean(self):
        with ShardedDataPlane([_rule(1, 100)], num_workers=2) as plane:
            plane.process(_trace(random.Random(3), [100, 101], 40))
            result = plane.finish()
        assert result.packets == 40

    def test_worker_restart_budget_surfaces_runtime_error(self):
        plane = ShardedDataPlane(
            [_rule(1, 100)],
            num_workers=1,
            restart_dead_workers=True,
            max_worker_restarts=0,
        )
        plane.start()
        try:
            plane._workers[0].terminate()
            plane._workers[0].join(timeout=5.0)
            plane._pending[999] = ([], [], 0, [])  # simulate outstanding work
            with pytest.raises(RuntimeError, match="restart budget"):
                plane.heal()
        finally:
            plane._pending.clear()
            plane.close()

    def test_killed_worker_is_restarted_and_verdicts_survive(self):
        rng = random.Random("kill-mid-stream")
        octets = [100, 101, 102]
        rules = [_rule(1, 100), _rule(2, 101, Action.ALLOW)]
        trace_a = _trace(rng, octets, 80)
        trace_b = _trace(rng, octets, 80)
        with ShardedDataPlane(
            rules,
            num_workers=2,
            decision_secret=SECRET,
            restart_dead_workers=True,
        ) as plane:
            got_a = plane.process(trace_a)
            plane._workers[0].terminate()
            plane._workers[0].join(timeout=5.0)
            got_b = plane.process(trace_b)
            restarts = list(plane._worker_restarts)
        reference = run_single_process_reference(
            rules, trace_a + trace_b, decision_secret=SECRET
        )
        assert got_a + got_b == reference.verdicts
        assert sum(restarts) == 1


# -- membership churn over the serve control plane (PR 8 satellite) --------------


def test_membership_churn_mid_stream_drains_lossless():
    """10k /32 blocklist installs + partial retract mid-stream, zero loss.

    Membership-tier churn rides the serve control plane as *batch* deltas:
    one acked shard broadcast installs 10,000 exact-source DROP rules
    between bursts, a second retracts 4,000 of them, and the drain must
    still account for every ingested packet while verdicts flip both ways
    live.
    """
    import asyncio

    from repro import obs
    from repro.core.rules import FilterRule, FlowPattern
    from repro.obs import EventJournal, MetricsRegistry
    from repro.serve import (
        ServeConfig,
        ServeService,
        ServeState,
        ShardBackend,
        TraceReplaySource,
    )

    block_base = 0x64400000  # 100.64.0.0
    churn_rules = [
        FilterRule(
            rule_id=1_000_000 + i,
            pattern=FlowPattern.from_src_host(block_base + i),
            action=Action.DROP,
            requested_by=REQUESTER,
        )
        for i in range(10_000)
    ]
    retract_ids = tuple(rule.rule_id for rule in churn_rules[:4_000])

    rng = random.Random("membership-churn")
    trace = []
    for _ in range(600):
        blocked = rng.random() < 0.5
        trace.append(Packet(five_tuple=FiveTuple(
            src_ip=(f"100.64.{rng.randrange(40)}.{rng.randrange(256)}"
                    if blocked else
                    f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}"),
            dst_ip=f"198.18.0.{rng.randrange(1, 255)}",
            src_port=rng.randrange(1024, 65535),
            dst_port=80,
            protocol=Protocol.UDP,
        )))
    source = TraceReplaySource(trace, burst_size=25)

    # A probe inside the retracted range: DROP after install, ALLOW again
    # after the partial retract.
    probe = Packet(five_tuple=FiveTuple(
        src_ip="100.64.0.5", dst_ip="198.18.0.9",
        src_port=40000, dst_port=80, protocol=Protocol.UDP,
    ))

    plane = ShardedDataPlane(
        [_rule(1, 100)],
        num_workers=2,
        decision_secret=SECRET,
        restart_dead_workers=True,
    )
    backend = ShardBackend(plane)
    state = {"installed": False, "retracted": False, "service": None}

    async def hook(stage, burst_index):
        service = state["service"]
        if stage != "ingest" or service is None:
            return
        if burst_index == 5 and not state["installed"]:
            state["installed"] = True
            await service.install_rules(churn_rules)
            assert backend.process_burst([probe]) == [False]
        elif burst_index == 14 and not state["retracted"]:
            state["retracted"] = True
            await service.remove_rules(retract_ids)
            assert backend.process_burst([probe]) == [True]

    registry = obs.set_registry(MetricsRegistry())
    journal = obs.set_journal(EventJournal(enabled=True))
    try:
        async def scenario():
            service = ServeService(
                source,
                backend,
                ServeConfig(queue_depth=30, ingest_interval_s=0.002),
                chaos=hook,
            )
            state["service"] = service
            await service.start()
            deadline = asyncio.get_running_loop().time() + 120.0
            while not service._source_exhausted:
                if service.state is ServeState.FAILED:
                    break
                assert asyncio.get_running_loop().time() < deadline, "stalled"
                await asyncio.sleep(0.005)
            return await service.drain()

        report = asyncio.run(scenario())
        assert state["installed"] and state["retracted"]
        assert report.state == "drained"
        assert report.ingested == len(trace)
        assert report.unaccounted == 0
        assert report.rule_updates == 2  # two batch deltas, not 14k singles
        assert report.dropped > 0 and report.allowed > 0
        # Both batches bumped the plane's ruleset version exactly once each.
        assert plane.ruleset_version == 2
        assert obs.get_registry().check_invariants() == []
    finally:
        obs.set_registry(registry)
        obs.set_journal(journal)
