"""Gao-Rexford policy routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.interdomain.routing import (
    Route,
    RouteKind,
    as_path,
    is_valley_free,
    route_tree,
)
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet
from repro.interdomain.topology import ASGraph, Tier


def diamond() -> ASGraph:
    r"""1 and 2 are tier-1 peers; 3 buys from 1, 4 buys from 2; 3-4 peer.

        1 ===peer=== 2
        |            |
        3 ===peer=== 4
    """
    g = ASGraph()
    g.add_as(1, "E", Tier.TIER1)
    g.add_as(2, "E", Tier.TIER1)
    g.add_as(3, "E", Tier.TIER2)
    g.add_as(4, "E", Tier.TIER2)
    g.add_p2c(1, 3)
    g.add_p2c(2, 4)
    g.add_p2p(1, 2)
    g.add_p2p(3, 4, ixp_id="ix")
    return g


def test_origin_route():
    routes = route_tree(diamond(), 3)
    assert routes[3].kind is RouteKind.ORIGIN
    assert routes[3].length == 0


def test_customer_route_preferred():
    routes = route_tree(diamond(), 3)
    # 1 hears from its customer 3.
    assert routes[1].kind is RouteKind.CUSTOMER
    assert routes[1].next_hop == 3


def test_peer_route_single_hop():
    routes = route_tree(diamond(), 3)
    # 4 peers with 3 directly: a peer route, length 1 — preferred over the
    # longer provider route via 2.
    assert routes[4].kind is RouteKind.PEER
    assert routes[4].next_hop == 3
    assert routes[4].length == 1


def test_provider_route_when_nothing_better():
    g = diamond()
    routes = route_tree(g, 4)
    # 2->4 customer; 1 peers with 2 -> peer route; 3 gets it from provider 1.
    assert routes[3].kind is RouteKind.PEER  # 3 peers with 4 directly
    # Remove the 3-4 peering to force the provider path.
    g2 = diamond()
    g2.peers[3].discard(4)
    g2.peers[4].discard(3)
    routes2 = route_tree(g2, 4)
    assert routes2[3].kind is RouteKind.PROVIDER
    assert as_path(routes2, 3) == (3, 1, 2, 4)


def test_as_path_reconstruction():
    routes = route_tree(diamond(), 3)
    assert as_path(routes, 4) == (4, 3)
    assert as_path(routes, 2) == (2, 1, 3)
    assert as_path(routes, 3) == (3,)
    assert as_path(routes, 99) is None


def test_unknown_destination_raises():
    with pytest.raises(RoutingError):
        route_tree(diamond(), 99)


def test_no_valley_paths_exported():
    """A route learned from a peer/provider is never exported to another
    peer/provider: 4 must NOT reach 3's customers through 2-1 peer link
    when an alternative doesn't exist."""
    g = ASGraph()
    g.add_as(1, "E", Tier.TIER1)
    g.add_as(2, "E", Tier.TIER1)
    g.add_as(3, "E", Tier.STUB)
    g.add_p2p(1, 2)
    g.add_p2c(1, 3)
    # 2 reaches 3 via peer 1 (peer route over 1's customer route): valid.
    routes = route_tree(g, 3)
    assert routes[2].kind is RouteKind.PEER
    # But a second peer (4) of 2 must not learn that route through 2.
    g.add_as(4, "E", Tier.TIER1)
    g.add_p2p(2, 4)
    routes = route_tree(g, 3)
    assert 4 not in routes  # no valley-free path exists


def test_valley_free_checker():
    g = diamond()
    assert is_valley_free(g, (4, 3))
    assert is_valley_free(g, (3, 1, 2, 4))
    assert not is_valley_free(g, (1, 3, 4, 2))  # down then lateral = valley
    assert not is_valley_free(g, (1, 4))  # not even an edge


def test_route_preference_object():
    a = Route(kind=RouteKind.CUSTOMER, length=5, next_hop=1)
    b = Route(kind=RouteKind.PEER, length=1, next_hop=2)
    assert a.preference() < b.preference()  # customer wins despite length


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5),
       victim_index=st.integers(min_value=0, max_value=50))
def test_all_paths_valley_free_on_synthetic_internet(seed, victim_index):
    """Property: every computed path on a generated topology is valley-free."""
    config = SyntheticInternetConfig(
        tier1_per_region=1, tier2_per_region=4, stubs_per_region=12, seed=seed
    )
    graph, _ = generate_internet(config)
    stubs = graph.ases_by_tier(Tier.STUB)
    victim = stubs[victim_index % len(stubs)]
    routes = route_tree(graph, victim)
    for source in list(routes)[:40]:
        path = as_path(routes, source)
        assert path is not None
        assert is_valley_free(graph, path), path


def test_synthetic_internet_fully_routable():
    graph, _ = generate_internet(
        SyntheticInternetConfig(tier1_per_region=1, tier2_per_region=4,
                                stubs_per_region=10, seed=3)
    )
    victim = graph.ases_by_tier(Tier.STUB)[0]
    routes = route_tree(graph, victim)
    # Every AS reaches the victim (stubs are always provider-connected).
    assert len(routes) == len(graph)
