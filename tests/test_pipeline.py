"""The RX -> Filter -> TX pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.pipeline import FilterPipeline, PipelineAccountingError
from tests.conftest import make_packet


def test_allow_all_forwards_everything():
    pipeline = FilterPipeline(lambda p: True)
    packets = [make_packet(src_port=1000 + i) for i in range(100)]
    out = pipeline.process(packets)
    assert len(out) == 100
    assert pipeline.stats.allowed == 100
    assert pipeline.stats.dropped == 0


def test_drop_all_forwards_nothing():
    pipeline = FilterPipeline(lambda p: False)
    out = pipeline.process([make_packet() for _ in range(10)])
    assert out == []
    assert pipeline.stats.dropped == 10
    assert len(pipeline.drop_ring) == 10


def test_selective_filter():
    pipeline = FilterPipeline(lambda p: p.five_tuple.src_port % 2 == 0)
    packets = [make_packet(src_port=1000 + i) for i in range(50)]
    out = pipeline.process(packets)
    assert len(out) == 25
    assert all(p.five_tuple.src_port % 2 == 0 for p in out)


def test_order_preserved():
    pipeline = FilterPipeline(lambda p: True)
    packets = [make_packet(src_port=2000 + i) for i in range(40)]
    out = pipeline.process(packets)
    assert [p.five_tuple.src_port for p in out] == [2000 + i for i in range(40)]


def test_stats_processed():
    pipeline = FilterPipeline(lambda p: p.five_tuple.src_port != 1000)
    pipeline.process([make_packet(src_port=1000), make_packet(src_port=1001)])
    assert pipeline.stats.processed == 2
    assert pipeline.stats.received == 2


def test_burst_size_validation():
    with pytest.raises(ValueError):
        FilterPipeline(lambda p: True, burst_size=0)


def test_multiple_process_calls_accumulate():
    pipeline = FilterPipeline(lambda p: True)
    pipeline.process([make_packet()])
    pipeline.process([make_packet()])
    assert pipeline.stats.allowed == 2


# -- overflow accounting -------------------------------------------------------


def test_tx_ring_overflow_is_counted():
    """A packet the filter allowed but the full TX ring swallowed must be
    visible in the stats — it used to vanish from every counter."""
    pipeline = FilterPipeline(lambda p: True, ring_capacity=4, burst_size=4)
    pipeline.nic_in.receive_from_wire(
        [make_packet(src_port=1000 + i) for i in range(8)]
    )
    pipeline.rx_stage()
    pipeline.filter_stage()  # fills the TX ring to capacity
    pipeline.rx_stage()
    pipeline.filter_stage()  # 4 allowed verdicts, no TX room: all overflow
    stats = pipeline.stats
    assert stats.allowed == 4
    assert stats.tx_overflow_drops == 4
    assert stats.processed == 8
    pipeline.check_conservation()
    pipeline.run_until_drained()
    assert stats.received == (
        stats.allowed
        + stats.dropped
        + stats.rx_overflow_drops
        + stats.tx_overflow_drops
    )


def test_conservation_check_catches_untracked_loss():
    pipeline = FilterPipeline(lambda p: True)
    pipeline.process([make_packet()])
    pipeline.stats.received += 1  # simulate a lost packet
    with pytest.raises(PipelineAccountingError):
        pipeline.check_conservation()


@settings(max_examples=40, deadline=None)
@given(
    n_packets=st.integers(min_value=0, max_value=150),
    ring_capacity=st.integers(min_value=1, max_value=6),
    burst_size=st.integers(min_value=1, max_value=48),
    modulus=st.integers(min_value=1, max_value=4),
)
def test_packet_conservation_under_backpressure(
    n_packets, ring_capacity, burst_size, modulus
):
    """However small the rings, received == allowed + dropped + overflow."""
    pipeline = FilterPipeline(
        lambda p: p.five_tuple.src_port % modulus != 0,
        ring_capacity=ring_capacity,
        burst_size=burst_size,
    )
    out = pipeline.process(
        [make_packet(src_port=1000 + i) for i in range(n_packets)]
    )
    stats = pipeline.stats
    assert stats.received == n_packets
    assert stats.received == (
        stats.allowed
        + stats.dropped
        + stats.rx_overflow_drops
        + stats.tx_overflow_drops
    )
    assert len(out) == stats.allowed


# -- the burst filter interface ------------------------------------------------


class BurstSpy:
    """A filter exposing ``process_burst``; records how it was invoked."""

    def __init__(self, verdict):
        self.verdict = verdict
        self.burst_sizes = []
        self.per_packet_calls = 0

    def __call__(self, packet):
        self.per_packet_calls += 1
        return self.verdict(packet)

    def process_burst(self, packets):
        self.burst_sizes.append(len(packets))
        return [self.verdict(p) for p in packets]


def test_burst_interface_preferred_over_per_packet():
    spy = BurstSpy(lambda p: True)
    pipeline = FilterPipeline(spy, burst_size=32)
    out = pipeline.process([make_packet(src_port=1000 + i) for i in range(100)])
    assert len(out) == 100
    assert spy.per_packet_calls == 0
    assert sum(spy.burst_sizes) == 100
    assert max(spy.burst_sizes) <= 32
    # 100 packets in bursts of <= 32 -> exactly 4 filter invocations.
    assert len(spy.burst_sizes) == 4


def test_burst_interface_verdicts_match_per_packet():
    verdict = lambda p: p.five_tuple.src_port % 2 == 0  # noqa: E731
    packets = [make_packet(src_port=1000 + i) for i in range(64)]
    burst_out = FilterPipeline(BurstSpy(verdict)).process(list(packets))
    plain_out = FilterPipeline(verdict).process(list(packets))
    assert [p.five_tuple for p in burst_out] == [p.five_tuple for p in plain_out]


def test_burst_filter_verdict_count_mismatch_raises():
    class Broken:
        def __call__(self, packet):
            return True

        def process_burst(self, packets):
            return [True]  # wrong length for any burst > 1

    pipeline = FilterPipeline(Broken())
    with pytest.raises(PipelineAccountingError):
        pipeline.process([make_packet(src_port=1000 + i) for i in range(2)])
