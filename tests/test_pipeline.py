"""The RX -> Filter -> TX pipeline."""

import pytest

from repro.dataplane.pipeline import FilterPipeline
from tests.conftest import make_packet


def test_allow_all_forwards_everything():
    pipeline = FilterPipeline(lambda p: True)
    packets = [make_packet(src_port=1000 + i) for i in range(100)]
    out = pipeline.process(packets)
    assert len(out) == 100
    assert pipeline.stats.allowed == 100
    assert pipeline.stats.dropped == 0


def test_drop_all_forwards_nothing():
    pipeline = FilterPipeline(lambda p: False)
    out = pipeline.process([make_packet() for _ in range(10)])
    assert out == []
    assert pipeline.stats.dropped == 10
    assert len(pipeline.drop_ring) == 10


def test_selective_filter():
    pipeline = FilterPipeline(lambda p: p.five_tuple.src_port % 2 == 0)
    packets = [make_packet(src_port=1000 + i) for i in range(50)]
    out = pipeline.process(packets)
    assert len(out) == 25
    assert all(p.five_tuple.src_port % 2 == 0 for p in out)


def test_order_preserved():
    pipeline = FilterPipeline(lambda p: True)
    packets = [make_packet(src_port=2000 + i) for i in range(40)]
    out = pipeline.process(packets)
    assert [p.five_tuple.src_port for p in out] == [2000 + i for i in range(40)]


def test_stats_processed():
    pipeline = FilterPipeline(lambda p: p.five_tuple.src_port != 1000)
    pipeline.process([make_packet(src_port=1000), make_packet(src_port=1001)])
    assert pipeline.stats.processed == 2
    assert pipeline.stats.received == 2


def test_burst_size_validation():
    with pytest.raises(ValueError):
        FilterPipeline(lambda p: True, burst_size=0)


def test_multiple_process_calls_accumulate():
    pipeline = FilterPipeline(lambda p: True)
    pipeline.process([make_packet()])
    pipeline.process([make_packet()])
    assert pipeline.stats.allowed == 2
