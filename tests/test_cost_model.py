"""The calibrated cycle-cost model — anchored to the paper's numbers.

These tests pin the calibration: if a constant drifts, the figure
reproductions drift with it, so the anchors below are deliberately tight.
"""

import pytest

from repro.dataplane.cost_model import (
    CostModel,
    ImplementationVariant,
    PAPER_COST_MODEL,
)
from repro.util.units import MPPS

M = PAPER_COST_MODEL
NATIVE = ImplementationVariant.NATIVE
FULL = ImplementationVariant.SGX_FULL_COPY
ZERO = ImplementationVariant.SGX_ZERO_COPY


def test_zero_copy_64b_approx_8gbps():
    # Paper V-B: "8 Gb/s throughput performance even with 64 Byte packets
    # and 3,000 filter rules".
    gbps = M.achieved_wire_gbps(ZERO, 64, 3000)
    assert 7.0 < gbps < 9.0


def test_native_is_line_rate_at_all_sizes():
    for size in (64, 128, 256, 512, 1024, 1500):
        assert M.achieved_wire_gbps(NATIVE, size, 3000) == pytest.approx(
            10.0, rel=0.01
        )


def test_all_variants_line_rate_at_256b_and_up():
    # Paper: "For the packet sizes of 256 Byte or larger, all the three
    # implementations achieve the full line-rate of 10 Gb/s."
    for variant in (NATIVE, FULL, ZERO):
        for size in (256, 512, 1024, 1500):
            assert M.achieved_wire_gbps(variant, size, 3000) == pytest.approx(
                10.0, rel=0.01
            )


def test_full_copy_capped_near_6mpps():
    # Paper Appendix E: "maximum packet processing rate is capped at
    # roughly 6 Mpps" for the full-copy variant.
    pps = M.capacity_pps(FULL, 64, 3000)
    assert 4.5 * MPPS < pps < 6.5 * MPPS


def test_full_copy_worst_at_small_packets():
    small = M.achieved_wire_gbps(FULL, 64, 3000)
    large = M.achieved_wire_gbps(FULL, 1500, 3000)
    assert small < 5.0 < large


def test_variant_ordering_at_small_packets():
    # native >= zero-copy >= full-copy at 64 B.
    n = M.achieved_pps(NATIVE, 64, 3000)
    z = M.achieved_pps(ZERO, 64, 3000)
    f = M.achieved_pps(FULL, 64, 3000)
    assert n >= z > f


def test_rule_knee_at_3000():
    # Fig 3a: line rate through 3,000 rules, collapse beyond.
    at_100 = M.achieved_pps(NATIVE, 64, 100)
    at_3000 = M.achieved_pps(NATIVE, 64, 3000)
    at_10000 = M.achieved_pps(NATIVE, 64, 10000)
    assert at_100 == pytest.approx(at_3000, rel=0.01)  # both line-rate bound
    assert at_10000 < 0.5 * at_3000


def test_lookup_cost_monotone_in_rules():
    costs = [M.lookup_cycles(k) for k in (0, 10, 100, 1000, 3000, 5000, 10000)]
    assert costs == sorted(costs)


def test_hash_ratio_degrades_only_small_packets():
    # Fig 14 at a 10% hash ratio: 64 B degrades up to ~25%, others don't.
    base = M.achieved_wire_gbps(ZERO, 64, 3000, hash_ratio=0.0)
    hashed = M.achieved_wire_gbps(ZERO, 64, 3000, hash_ratio=0.1)
    degradation = 1 - hashed / base
    assert 0.05 < degradation < 0.30
    for size in (256, 512, 1024, 1500):
        assert M.achieved_wire_gbps(ZERO, size, 3000, hash_ratio=0.1) == (
            pytest.approx(M.achieved_wire_gbps(ZERO, size, 3000), rel=0.01)
        )


def test_hash_ratio_monotone():
    values = [
        M.achieved_wire_gbps(ZERO, 64, 3000, hash_ratio=r)
        for r in (0.0, 0.1, 0.5, 1.0)
    ]
    assert values == sorted(values, reverse=True)


def test_latency_matches_paper_points():
    # Section V-B: 34/38/52/80/107 us at 128..1500 B under 8 Gb/s load.
    expected = {128: 34, 256: 38, 512: 52, 1024: 80, 1500: 107}
    for size, target in expected.items():
        latency = M.latency_us(size, load_gbps=8.0)
        assert latency == pytest.approx(target, rel=0.12)


def test_latency_infinite_at_saturation():
    assert M.latency_us(64, load_gbps=10.0, num_rules=10000) == float("inf")


def test_offered_load_caps_throughput():
    pps = M.achieved_pps(NATIVE, 64, 100, offered_pps=1000.0)
    assert pps == 1000.0


def test_validation():
    with pytest.raises(ValueError):
        M.per_packet_cycles(ZERO, 64, -1)
    with pytest.raises(ValueError):
        M.per_packet_cycles(ZERO, 64, 100, hash_ratio=1.5)


def test_ecalls_per_packet():
    assert M.ecalls_per_packet(ZERO) == pytest.approx(1 / 32)  # calibrated
    assert M.ecalls_per_packet(ZERO, batch_size=1) == 1.0
    assert M.ecalls_per_packet(ZERO, batch_size=64) == pytest.approx(1 / 64)
    assert M.ecalls_per_packet(NATIVE, batch_size=1) == 0.0  # no enclave
    with pytest.raises(ValueError):
        M.ecalls_per_packet(ZERO, batch_size=0)


def test_default_batch_matches_calibration():
    """batch_size=None and batch_size=32 must reproduce the pinned anchors
    exactly — the transition term is modeled relative to the calibrated
    burst, so it is zero at the default."""
    for variant in (NATIVE, FULL, ZERO):
        assert M.transition_cycles(variant) == 0.0
        assert M.achieved_wire_gbps(variant, 64, 3000, batch_size=32) == (
            M.achieved_wire_gbps(variant, 64, 3000)
        )


def test_per_packet_ecalls_collapse_throughput():
    # One transition per packet: ~31 extra amortized transitions * 8k
    # cycles dwarfs the ~2k-cycle processing cost.
    batched = M.capacity_pps(ZERO, 64, 3000)
    unbatched = M.capacity_pps(ZERO, 64, 3000, batch_size=1)
    assert unbatched < 0.2 * batched


def test_throughput_monotone_in_batch_size():
    values = [
        M.capacity_pps(ZERO, 64, 3000, batch_size=b) for b in (1, 2, 4, 8, 16, 32, 64)
    ]
    assert values == sorted(values)


def test_native_unaffected_by_batch_size():
    for b in (1, 8, 64):
        assert M.achieved_pps(NATIVE, 64, 3000, batch_size=b) == (
            M.achieved_pps(NATIVE, 64, 3000)
        )


def test_epc_paging_penalty_applies_past_92mb():
    # Crossing the EPC limit (~6,100 rules with the default memory model)
    # must add cost beyond the locality trend.
    custom = CostModel()
    below = custom.lookup_cycles(6000)
    above = custom.lookup_cycles(6500)
    slope_before = custom.lookup_cycles(6000) - custom.lookup_cycles(5500)
    assert above - below > slope_before
