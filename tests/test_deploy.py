"""Deployment planning, cost analysis, IXP deployment."""

import pytest

from repro.core.rules import FilterRule, FlowPattern, RPKIRegistry
from repro.deploy import CapacityPlanner, IXPDeployment, deployment_cost
from repro.errors import ConfigurationError
from repro.interdomain.ixp import IXP
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet


def test_plan_500gbps_is_50_servers():
    # Paper VI-D: "to handle 500 Gb/s attack traffic, an IXP needs to
    # invest in 50 modest SGX-supporting commodity servers, which would
    # require only one or two server racks."
    plan = CapacityPlanner(headroom=0.0).plan(500.0)
    assert plan.num_servers == 50
    assert plan.num_racks in (1, 2)


def test_plan_respects_rule_capacity():
    plan = CapacityPlanner(headroom=0.0).plan(10.0, total_rules=30_000)
    # 30 K rules at ~3 K rules/enclave -> at least 10 enclaves even though
    # bandwidth alone needs only 1.
    assert plan.num_enclaves >= 10


def test_plan_headroom():
    base = CapacityPlanner(headroom=0.0).plan(100.0).num_enclaves
    inflated = CapacityPlanner(headroom=0.2).plan(100.0).num_enclaves
    assert inflated == 12 and base == 10


def test_plan_attestation_setup_time():
    plan = CapacityPlanner(parallel_attestations=10, headroom=0.0).plan(500.0)
    # 50 enclaves in batches of 10 -> 5 sequential rounds of ~3.04 s.
    assert plan.setup_attestation_s == pytest.approx(5 * 3.04, rel=0.05)


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        CapacityPlanner().plan(0)
    with pytest.raises(ConfigurationError):
        CapacityPlanner().plan(10, total_rules=-1)
    with pytest.raises(ConfigurationError):
        CapacityPlanner(enclave_bandwidth_bps=0)


def test_cost_analysis_headline_number():
    # "US$ 100K to offer an extremely large defense capability of 500 Gb/s"
    report = deployment_cost()
    assert report.total_capex_usd == pytest.approx(100_000.0)
    assert report.num_servers == 50
    assert report.capex_per_member_usd == pytest.approx(200.0)


def test_cost_analysis_custom():
    report = deployment_cost(target_gbps=100, member_ases=100,
                             server_unit_cost_usd=1500)
    assert report.num_servers == 10
    assert report.total_capex_usd == pytest.approx(15_000.0)
    assert report.capex_per_member_usd == pytest.approx(150.0)
    rows = report.as_rows()
    assert any("capex" in str(r[0]) for r in rows)


def test_cost_validation():
    with pytest.raises(ConfigurationError):
        deployment_cost(member_ases=0)
    with pytest.raises(ConfigurationError):
        deployment_cost(server_unit_cost_usd=0)


def _ixp():
    return IXP(ixp_id="test-ix", name="Test IX", region="Europe",
               members={64500, 64501, 64502})


def test_ixp_deployment_create_and_session():
    deployment = IXPDeployment.create(_ixp(), target_gbps=30)
    assert deployment.capacity_gbps >= 30
    assert len(deployment.controller.enclaves) == deployment.plan.num_enclaves

    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    session = deployment.open_session(VICTIM, rpki, deployment.controller.ias)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
        p_allow=0.0,
        requested_by=VICTIM,
    )
    session.submit_rules([rule])
    delivered = deployment.controller.carry([make_packet() for _ in range(10)])
    assert delivered == []  # p_allow 0: everything dropped in-filter
    session.observe_delivered(delivered)
    assert session.audit_round().clean


def test_ixp_deployment_neighbor_auditors():
    deployment = IXPDeployment.create(_ixp(), target_gbps=10)
    auditors = deployment.neighbor_auditors()
    assert set(auditors) == {64500, 64501, 64502}
    assert len(deployment.neighbor_auditors(limit=2)) == 2


def test_ixp_deployment_validation():
    with pytest.raises(ConfigurationError):
        IXPDeployment.create(_ixp(), target_gbps=0)
