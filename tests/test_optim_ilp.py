"""The branch & bound mixed-ILP solver (the CPLEX stand-in)."""

import pytest

from repro.errors import InfeasibleError
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS, MB


def solver(**kw):
    return BranchAndBoundSolver(node_limit=kw.pop("node_limit", 3000),
                                time_limit_s=kw.pop("time_limit_s", 120), **kw)


def test_small_instance_solves_to_optimality():
    p = RuleDistributionProblem(
        bandwidths=[3 * GBPS, 4 * GBPS, 5 * GBPS, 6 * GBPS], headroom=0.2
    )
    result = solver().solve(p)
    assert result.optimal
    assert validate_allocation(result.allocation) == []
    assert result.objective == pytest.approx(result.allocation.objective())
    assert result.nodes_explored >= 1
    assert result.wall_time_s > 0


def test_exact_never_worse_than_greedy():
    for seed in (1, 2, 3):
        bandwidths = lognormal_bandwidths(8, 15 * GBPS, seed=seed)
        p = RuleDistributionProblem(bandwidths=bandwidths, headroom=0.3)
        exact = solver().solve(p)
        greedy = greedy_solve(p)
        assert exact.objective <= greedy.objective() * (1 + 1e-6)


def test_balanced_split_found():
    # Two 5 Gb/s rules on two enclaves: the optimum balances them 5/5.
    p = RuleDistributionProblem(
        bandwidths=[5 * GBPS, 5 * GBPS], enclave_bandwidth=10 * GBPS, headroom=1.0
    )
    result = solver().solve(p)
    loads = sorted(
        result.allocation.bandwidth_on(j)
        for j in range(len(result.allocation.assignments))
        if result.allocation.assignments[j]
    )
    assert loads[-1] == pytest.approx(5 * GBPS, rel=0.05)


def test_first_incumbent_mode_stops_early():
    bandwidths = lognormal_bandwidths(12, 25 * GBPS, seed=4)
    p = RuleDistributionProblem(bandwidths=bandwidths, headroom=0.2)
    result = solver(stop_at_first_incumbent=True).solve(p)
    assert validate_allocation(result.allocation) == []
    # May or may not be optimal, but must be feasible and flagged not-proven.
    assert not result.optimal


def test_no_rounding_heuristic_still_solves():
    p = RuleDistributionProblem(
        bandwidths=[2 * GBPS, 3 * GBPS, 4 * GBPS], headroom=0.3
    )
    result = solver(use_rounding_heuristic=False,
                    stop_at_first_incumbent=True).solve(p)
    assert validate_allocation(result.allocation) == []


def test_respects_memory_constraint():
    p = RuleDistributionProblem(
        bandwidths=[100.0] * 6,
        memory_budget=4 * MB,
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,  # 3 rules per enclave max
        headroom=0.5,
    )
    result = solver().solve(p)
    assert validate_allocation(result.allocation) == []
    assert all(len(a) <= 3 for a in result.allocation.assignments)


def test_zero_bandwidth_rules_are_placed():
    p = RuleDistributionProblem(bandwidths=[0.0, 1 * GBPS], headroom=0.2)
    result = solver().solve(p)
    assert validate_allocation(result.allocation) == []
    assert result.allocation.rule_replicas(0)


def test_infeasible_raises():
    p = RuleDistributionProblem(
        bandwidths=[1.0],
        memory_budget=2 * MB,
        bytes_per_rule=4 * MB,
        base_bytes=1 * MB,
    )
    with pytest.raises(InfeasibleError):
        solver().solve(p)
