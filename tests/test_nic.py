"""NIC port simulation."""

from repro.dataplane.nic import NIC
from tests.conftest import make_packet


def test_receive_and_rx_burst():
    nic = NIC("test")
    packets = [make_packet(src_port=1000 + i) for i in range(5)]
    assert nic.receive_from_wire(packets) == 5
    burst = nic.rx_burst(3)
    assert [p.five_tuple.src_port for p in burst] == [1000, 1001, 1002]
    assert nic.stats.rx_packets == 5
    assert nic.stats.rx_bytes == sum(p.size for p in packets)


def test_rx_queue_overflow_counts_drops():
    nic = NIC("tiny", rx_queue_size=2)
    accepted = nic.receive_from_wire([make_packet() for _ in range(4)])
    assert accepted == 2
    assert nic.stats.rx_dropped == 2
    assert nic.stats.rx_packets == 4  # counted on the wire side


def test_tx_and_drain():
    nic = NIC("test")
    packets = [make_packet(src_port=2000 + i) for i in range(3)]
    assert nic.tx(packets) == 3
    out = nic.drain_to_wire()
    assert len(out) == 3
    assert nic.stats.tx_packets == 3
    assert nic.stats.tx_bytes == sum(p.size for p in packets)
    assert nic.drain_to_wire() == []
