"""Count-min sketch: CM guarantees, merge, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.countmin import (
    BLOB_VERSION,
    CountMinSketch,
    PAPER_DEPTH,
    PAPER_WIDTH,
)


def small_sketch(width=256, seed="t") -> CountMinSketch:
    return CountMinSketch(depth=2, width=width, family_seed=seed)


def test_paper_configuration_memory():
    sketch = CountMinSketch()
    assert sketch.depth == PAPER_DEPTH == 2
    assert sketch.width == PAPER_WIDTH == 64 * 1024
    # "Each counter has 64 bits and takes only around 1 MB EPC memory".
    assert sketch.memory_bytes() == 2 * 64 * 1024 * 8
    assert sketch.memory_bytes() <= 1.1 * 1024 * 1024


def test_update_and_estimate():
    sketch = small_sketch()
    sketch.update(b"flow-a", 3)
    sketch.update(b"flow-a")
    assert sketch.estimate(b"flow-a") >= 4
    assert sketch.total == 4


def test_estimate_unseen_key_can_be_zero():
    sketch = small_sketch(width=4096)
    sketch.update(b"x")
    assert sketch.estimate(b"never-seen") in (0, 1)  # collisions possible


def test_update_rejects_nonpositive():
    sketch = small_sketch()
    with pytest.raises(ValueError):
        sketch.update(b"x", 0)
    with pytest.raises(ValueError):
        sketch.update(b"x", -1)


def test_clear_resets():
    sketch = small_sketch()
    sketch.update(b"x", 10)
    sketch.clear()
    assert sketch.total == 0
    assert sketch.estimate(b"x") == 0


def test_merge_adds_counts():
    a = small_sketch()
    b = small_sketch()
    a.update(b"k", 2)
    b.update(b"k", 5)
    a.merge(b)
    assert a.estimate(b"k") >= 7
    assert a.total == 7


def test_merge_requires_same_family():
    a = small_sketch(seed="one")
    b = small_sketch(seed="two")
    with pytest.raises(ValueError):
        a.merge(b)
    c = CountMinSketch(depth=2, width=512, family_seed="one")
    with pytest.raises(ValueError):
        a.merge(c)


def test_copy_is_independent():
    a = small_sketch()
    a.update(b"k")
    b = a.copy()
    b.update(b"k", 10)
    assert a.estimate(b"k") < b.estimate(b"k")


def test_serialize_roundtrip():
    a = small_sketch()
    for i in range(50):
        a.update(f"key-{i}".encode(), i + 1)
    b = CountMinSketch.deserialize(a.serialize())
    assert b.depth == a.depth and b.width == a.width
    assert b.bins() == a.bins()
    for i in range(50):
        assert b.estimate(f"key-{i}".encode()) == a.estimate(f"key-{i}".encode())


def test_deserialize_rejects_garbage():
    with pytest.raises(ValueError):
        CountMinSketch.deserialize(b"short")
    blob = small_sketch().serialize()
    with pytest.raises(ValueError):
        CountMinSketch.deserialize(blob[:-8])


def test_serialize_blob_is_versioned():
    blob = small_sketch().serialize()
    assert blob[0] == BLOB_VERSION


def test_deserialize_rejects_bad_version_byte():
    blob = bytearray(small_sketch().serialize())
    for bad in (0, 1, BLOB_VERSION + 1, 255):
        blob[0] = bad
        with pytest.raises(ValueError, match="version"):
            CountMinSketch.deserialize(bytes(blob))


def test_serialize_carries_exact_total():
    a = small_sketch()
    a.update(b"k", 7)
    a.update(b"other", 2)
    b = CountMinSketch.deserialize(a.serialize())
    assert b.total == a.total == 9


def test_serialize_total_exact_after_counter_saturation():
    """The old format reconstructed the total as the max row sum, which is
    wrong once any counter saturates; the blob must carry the exact value."""
    a = small_sketch(width=8)
    huge = 2**64 - 1
    a.update(b"k", huge)
    a.update(b"k", 5)  # counters saturate at 2^64-1; the total must not
    assert a.total == huge + 5
    assert a.estimate(b"k") == huge  # bins saturated
    b = CountMinSketch.deserialize(a.serialize())
    assert b.total == huge + 5
    assert b.bins() == a.bins()


def test_roundtrip_then_merge_matches_direct_merge():
    """Victim-side flow: deserialize per-enclave blobs, merge into one log."""
    a = small_sketch()
    b = small_sketch()
    for i in range(40):
        a.update(f"a-{i}".encode(), i + 1)
        b.update(f"b-{i}".encode(), 2 * i + 1)
    direct = a.copy()
    direct.merge(b)
    via_wire = CountMinSketch.deserialize(a.serialize())
    via_wire.merge(CountMinSketch.deserialize(b.serialize()))
    assert via_wire.bins() == direct.bins()
    assert via_wire.total == direct.total


def test_update_many_equivalent_to_point_updates():
    bulk = small_sketch()
    point = small_sketch()
    keys = [f"key-{i % 13}".encode() for i in range(100)]
    assert bulk.update_many(keys) == 100
    for key in keys:
        point.update(key)
    assert bulk.bins() == point.bins()
    assert bulk.total == point.total == 100


def test_update_many_with_count_and_empty():
    sketch = small_sketch()
    assert sketch.update_many([], 5) == 0
    assert sketch.total == 0
    sketch.update_many([b"x", b"y"], 3)
    assert sketch.estimate(b"x") >= 3
    assert sketch.total == 6
    with pytest.raises(ValueError):
        sketch.update_many([b"x"], 0)


def test_nonzero_bins_sparse_view():
    sketch = small_sketch()
    sketch.update(b"only-key", 4)
    sparse = sketch.nonzero_bins()
    assert sum(sparse.values()) == 4 * sketch.depth
    assert all(count == 4 for count in sparse.values())


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=12),
        st.integers(min_value=1, max_value=50),
        min_size=1,
        max_size=30,
    )
)
def test_never_underestimates(truth):
    """The defining count-min property: estimate >= true count, always."""
    sketch = small_sketch(width=64)  # narrow: force collisions
    for key, count in truth.items():
        sketch.update(key, count)
    for key, count in truth.items():
        assert sketch.estimate(key) >= count


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=40),
    st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=40),
)
def test_merge_equals_union_stream(stream_a, stream_b):
    """Merging sketches == sketching the concatenated stream."""
    a = small_sketch(width=128)
    b = small_sketch(width=128)
    union = small_sketch(width=128)
    for key in stream_a:
        a.update(key)
        union.update(key)
    for key in stream_b:
        b.update(key)
        union.update(key)
    a.merge(b)
    assert a.bins() == union.bins()


# -- merge hardening (shard-merge accounting regressions) ---------------------


def test_merge_accounts_updates_counter():
    """Regression: merge must book the merged occurrences into
    ``vif_sketch_updates_total`` exactly like update_weighted would — the
    old merge advanced the bins and total but never the registry, so the
    coordinator's books went short by every centrally merged packet."""
    from repro import obs

    counter = obs.get_registry().counter("vif_sketch_updates_total")
    a = small_sketch()
    b = small_sketch()
    b.update(b"k", 3)
    b.update(b"j", 4)
    before = counter.value
    a.merge(b)
    assert counter.value == before + 7  # b.total occurrences applied to a

    empty = small_sketch()
    a.merge(empty)
    assert counter.value == before + 7  # merging nothing books nothing


def test_merge_wordwise_matches_per_bin_addition():
    """Large (but unsaturated) neighbouring counters: the word-wise bignum
    add must be exactly bin-wise — no carry may cross a 64-bit lane."""
    big = 2**63  # half the lane: sum fits, high bit set in both operands
    a = small_sketch(width=8)
    b = small_sketch(width=8)
    for r in range(a.depth):
        for i in range(8):
            a._rows[r][i] = big - 1 - i
            b._rows[r][i] = big - 100 + i
    a._total = b._total = 1
    expected = [
        tuple((big - 1 - i) + (big - 100 + i) for i in range(8))
        for _ in range(a.depth)
    ]
    a.merge(b)
    assert a.bins() == expected


def test_merge_saturating_fallback_clamps_per_bin():
    a = small_sketch(width=8)
    b = small_sketch(width=8)
    near_max = 2**64 - 10
    for r in range(a.depth):
        a._rows[r][0] = near_max  # this bin saturates
        a._rows[r][1] = 50  # this one must still add exactly
        b._rows[r][0] = 100
        b._rows[r][1] = 7
    a._total = 5
    b._total = 9
    a.merge(b)
    for row in a.bins():
        assert row[0] == 2**64 - 1  # clamped, not wrapped
        assert row[1] == 57
    assert a.total == 14  # the exact total ignores bin saturation


def test_deserialize_rejects_blob_truncated_inside_total():
    """Regression: a blob cut inside the total bytes used to parse a short
    (garbage) total and fail later with a misleading length error — or,
    for a zero-length tail, not at all."""
    sketch = small_sketch(seed="truncation-test")
    sketch.update(b"k", 300)  # 2-byte total on the wire
    blob = sketch.serialize()
    seed_len = len(sketch.family.family_seed.encode())
    total_start = 14 + seed_len + 4
    with pytest.raises(ValueError, match="truncated before total"):
        CountMinSketch.deserialize(blob[: total_start + 1])
    # Cut before the total length field is also caught.
    with pytest.raises(ValueError, match="truncated before total"):
        CountMinSketch.deserialize(blob[: total_start - 2])
