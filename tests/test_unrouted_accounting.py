"""Unrouted-traffic accounting: LB counters, pipeline verdicts, conservation.

PR-1 added the ``received == allowed + dropped + overflows`` conservation
check; this locks in the extension: default-path traffic (matching no
installed rule) is counted as ``unrouted`` — distinct from filter-approved
``allowed`` — at both the load balancer and the pipeline, and the
conservation identity still holds exactly.
"""

from __future__ import annotations

import pytest

from repro.core.controller import BLACKHOLE, IXPController, LoadBalancer
from repro.core.fleet import FleetBurstFilter, FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.dataplane.pipeline import (
    UNROUTED,
    FilterPipeline,
    PipelineAccountingError,
)
from repro.tee.attestation import IASService
from repro.util.units import GBPS
from tests.conftest import VICTIM, make_packet


def build_rules(count: int = 6, rate_bps: float = 2.0 * GBPS) -> RuleSet:
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{100 + i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by=VICTIM,
                rate_bps=rate_bps,
            )
        )
    return rules


def rule_packet(i: int):
    return make_packet(dst_ip=f"203.0.{100 + i}.5")


def off_path_packet(k: int = 0):
    """Traffic matching no rule: rides the default path."""
    return make_packet(dst_ip=f"198.18.0.{k + 1}")


class TestLoadBalancerCounters:
    def test_unrouted_counter_increments(self):
        lb = LoadBalancer()
        rules = build_rules(1)
        lb.configure(rules, {1: [(0, 1.0)]})
        assert lb.route(off_path_packet()) is None
        assert lb.route(rule_packet(0)) == 0
        assert lb.unrouted_packets == 1

    def test_blackholed_counter_and_verdict(self):
        lb = LoadBalancer()
        rules = build_rules(2)
        lb.configure(rules, {1: [(0, 1.0)], 2: [(0, 1.0)]})
        lb.blackhole([2])
        assert lb.route(rule_packet(1)) is BLACKHOLE
        assert lb.blackholed_packets == 1
        assert lb.blackholed_rule_ids == {2}
        # rule 1 still routes
        assert lb.route(rule_packet(0)) == 0

    def test_reconfigure_clears_blackhole_only_for_rerouted_rules(self):
        lb = LoadBalancer()
        rules = build_rules(2)
        lb.configure(rules, {1: [(0, 1.0)], 2: [(0, 1.0)]})
        lb.blackhole([1, 2])
        # rule 1 gets a route again; rule 2 stays shed
        lb.configure(rules, {1: [(0, 1.0)]})
        assert lb.blackholed_rule_ids == {2}

    def test_controller_stats_surface_lb_counters(self):
        controller = IXPController(IASService())
        controller.launch_filters(1, scale_out=False)
        controller.install_single_filter(build_rules(2))
        controller.carry([rule_packet(0), off_path_packet(), off_path_packet(1)])
        stats = controller.stats()
        assert stats["unrouted_packets"] == 2
        assert stats["blackholed_packets"] == 0
        assert stats["packets_processed"] == 1
        assert stats["dead_enclaves"] == 0

    def test_controller_stats_skip_destroyed_enclaves(self):
        controller = IXPController(IASService())
        controller.launch_filters(2)
        controller.enclaves[1].destroy()
        stats = controller.stats()
        assert stats["dead_enclaves"] == 1
        assert stats["enclaves"] == 2


class TestPipelineUnroutedVerdict:
    def test_plain_bool_filters_never_count_unrouted(self):
        pipeline = FilterPipeline(lambda p: True)
        pipeline.process([make_packet() for _ in range(5)])
        assert pipeline.stats.allowed == 5
        assert pipeline.stats.unrouted == 0

    def test_unrouted_verdict_counted_separately_and_forwarded(self):
        class RoutedFilter:
            def __call__(self, packet):
                return self.process_burst([packet])[0]

            def process_burst(self, packets):
                return [
                    UNROUTED if p.five_tuple.dst_ip.startswith("198.18.") else True
                    for p in packets
                ]

        pipeline = FilterPipeline(RoutedFilter())
        out = pipeline.process(
            [rule_packet(0), off_path_packet(), off_path_packet(1)]
        )
        assert len(out) == 3  # unrouted traffic is still forwarded
        assert pipeline.stats.allowed == 1
        assert pipeline.stats.unrouted == 2
        assert pipeline.stats.processed == 3
        pipeline.check_conservation()

    def test_conservation_message_includes_unrouted(self):
        pipeline = FilterPipeline(lambda p: True)
        pipeline.stats.received = 10  # cook the books
        with pytest.raises(PipelineAccountingError, match="unrouted="):
            pipeline.check_conservation()

    def test_conservation_identity_exact(self):
        class HalfRouted:
            def __call__(self, packet):
                return self.process_burst([packet])[0]

            def process_burst(self, packets):
                verdicts = []
                for p in packets:
                    last = int(p.five_tuple.dst_ip.rsplit(".", 1)[1])
                    verdicts.append(
                        UNROUTED if last % 3 == 0 else last % 2 == 0
                    )
                return verdicts

        pipeline = FilterPipeline(HalfRouted())
        pipeline.process(
            [make_packet(dst_ip=f"203.0.100.{k}") for k in range(1, 61)]
        )
        s = pipeline.stats
        assert s.received == 60
        assert s.allowed + s.dropped + s.unrouted == 60
        assert s.unrouted == 20


class TestFleetPipelineIntegration:
    def make_fleet(self):
        controller = IXPController(IASService())
        fleet = FleetManager(
            controller, config=FleetConfig(spare_platforms=0)
        )
        fleet.deploy(build_rules(), enclaves_override=3)
        return fleet

    def test_fleet_filter_in_pipeline_counts_unrouted(self):
        fleet = self.make_fleet()
        pipeline = FilterPipeline(FleetBurstFilter(fleet))
        packets = [rule_packet(i) for i in range(6)] + [
            off_path_packet(k) for k in range(3)
        ]
        out = pipeline.process(packets)
        assert pipeline.stats.unrouted == 3
        assert pipeline.stats.allowed == 3  # even-indexed rules ALLOW
        assert pipeline.stats.dropped == 3
        assert len(out) == 6
        pipeline.check_conservation()

    def test_pipeline_survives_mid_run_crash_fail_closed(self):
        fleet = self.make_fleet()
        pipeline = FilterPipeline(FleetBurstFilter(fleet))
        packets = [rule_packet(i) for i in range(6)]
        pipeline.process(packets)
        allowed_before = pipeline.stats.allowed
        fleet.inject_crash(0)
        fleet.inject_crash(1)
        fleet.inject_crash(2)
        out = pipeline.process(packets)
        # whole fleet dead: every rule packet dropped, none delivered
        assert out == []
        assert pipeline.stats.allowed == allowed_before
        assert fleet.counters.unfiltered_packets == 0
        pipeline.check_conservation()
