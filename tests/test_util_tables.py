"""Table rendering."""

import pytest

from repro.util.tables import format_table


def test_basic_rendering():
    out = format_table(["a", "bb"], [[1, 2], [30, 4.5]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "--" in lines[1]
    assert "30" in lines[2] or "30" in lines[3]


def test_title_included():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_floats_formatted():
    out = format_table(["v"], [[1.23456]])
    assert "1.235" in out


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_columns_aligned():
    out = format_table(["name", "v"], [["long-name-here", 1], ["x", 22]])
    rows = out.splitlines()[2:]
    # The second column starts at the same offset in every row.
    offsets = [row.index(str(v)) for row, v in zip(rows, ("1", "22"))]
    assert offsets[0] == offsets[1]
