"""Edge cases of the membership tier: eviction storms, format pinning, memo.

The frozen-blob tests pin the Bloom serialization *byte-for-byte* to the
hash-family version tag (``FAMILY_VERSION``): if anyone changes
the digest derivation or the blob layout without bumping a version, the
fixture diverges and these tests fail — exactly the silent-corruption case
the version tags exist to prevent.  A blob carrying a mismatched version
must be refused loudly (:class:`MembershipVersionError`), never decoded.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern, RuleError
from repro.dataplane.packet import FiveTuple, Protocol
from repro.errors import LookupError_, MembershipVersionError
from repro.lookup.membership import (
    BloomFilter,
    CuckooHashTable,
    MembershipRule,
    MembershipTier,
    TieredRuleStore,
)
from repro.sketch.hashing import FAMILY_VERSION

_BLOCK_BASE = 0x64400000


def _tier(n: int = 0, capacity: int = 16) -> MembershipTier:
    tier = MembershipTier(initial_capacity=capacity)
    for i in range(n):
        tier.insert(MembershipRule(100 + i, _BLOCK_BASE + i))
    return tier


# -- cuckoo eviction / stash -----------------------------------------------------


def test_cuckoo_eviction_cycle_falls_back_to_stash():
    """Keys colliding into one bucket pair kick in a loop, then stash."""
    table = CuckooHashTable(
        num_buckets=4,
        lane_fn=lambda key: (0, 1),  # every key fights over buckets 0 and 1
        slots_per_bucket=1,
        max_kicks=8,
        stash_limit=2,
    )
    assert table.insert(1, "a", (0, 1))
    assert table.insert(2, "b", (0, 1))
    # Buckets full; the kick loop cycles between 0 and 1 and gives up.
    assert table.insert(3, "c", (0, 1))
    assert table.stash_entries == 1
    assert table.insert(4, "d", (0, 1))
    assert table.stash_entries == 2
    # Stash full too: insert signals overflow (the tier rebuilds on this)
    # but still parks the entry, so nothing is lost before the rebuild.
    assert not table.insert(5, "e", (0, 1))
    assert table.stash_entries == 3
    # Everything inserted so far — stashed or not — still answers get().
    for key, value in [(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e")]:
        assert table.get(key, (0, 1)) == value
    # Stash entries are removable like any other.
    assert table.remove(3, (0, 1)) == "c"
    assert table.get(3, (0, 1)) is None
    assert table.stash_entries == 2


def test_tier_survives_stash_overflow_by_rebuilding():
    """A tier driven past its stash rebuilds with more buckets, loses nothing."""
    tier = MembershipTier(initial_capacity=16, slots_per_bucket=1, stash_limit=1)
    for i in range(400):
        tier.insert(MembershipRule(i + 1, _BLOCK_BASE + i))
    stats = tier.stats()
    assert stats.entries == 400
    assert stats.resizes >= 1
    for i in range(400):
        hit = tier.query(_BLOCK_BASE + i)
        assert hit is not None and hit.rule_id == i + 1


# -- duplicate / absent ----------------------------------------------------------


def test_duplicate_rule_id_rejected():
    tier = _tier(4)
    with pytest.raises(LookupError_, match="already installed"):
        tier.insert(MembershipRule(100, _BLOCK_BASE + 50))


def test_duplicate_source_lowest_rule_id_wins():
    tier = _tier()
    tier.insert(MembershipRule(7, _BLOCK_BASE))
    tier.insert(MembershipRule(3, _BLOCK_BASE))
    tier.insert(MembershipRule(5, _BLOCK_BASE))
    assert tier.query(_BLOCK_BASE).rule_id == 3
    tier.remove(3)
    assert tier.query(_BLOCK_BASE).rule_id == 5
    tier.remove(5)
    tier.remove(7)
    assert tier.query(_BLOCK_BASE) is None


def test_remove_of_absent_raises():
    tier = _tier(2)
    with pytest.raises(LookupError_, match="not installed"):
        tier.remove(999)


def test_store_cross_tier_duplicate_rejected():
    """One id namespace across both tiers — no membership/trie aliasing."""
    store = TieredRuleStore(membership=MembershipTier(initial_capacity=16))
    store.insert(FilterRule(
        rule_id=1,
        pattern=FlowPattern(src_prefix="100.64.0.1/32"),
        action=Action.DROP,
    ))
    with pytest.raises(LookupError_):
        store.insert(FilterRule(
            rule_id=1,
            pattern=FlowPattern(dst_prefix="203.0.113.0/24"),
            action=Action.DROP,
        ))


# -- resize mid-burst ------------------------------------------------------------


def test_resize_mid_burst_keeps_every_key():
    """Inserts crossing several resize boundaries never drop a key."""
    tier = MembershipTier(initial_capacity=16)
    generations = []
    tier.add_rebuild_listener(generations.append)
    for i in range(2000):
        tier.insert(MembershipRule(i + 1, _BLOCK_BASE + i))
        if i % 97 == 0:  # interleave queries with the burst
            assert tier.query(_BLOCK_BASE + i).rule_id == i + 1
    assert len(generations) >= 2, "burst never crossed a resize boundary"
    stats = tier.stats()
    assert stats.entries == 2000
    assert stats.load_factor <= 0.95
    missing = [i for i in range(2000) if tier.query(_BLOCK_BASE + i) is None]
    assert missing == []


# -- frozen Bloom blob: format + version pinning ---------------------------------

# serialize_bloom() of a capacity-16 tier holding rule ids 100..107 over
# sources 100.64.0.0..100.64.0.7, under FAMILY_VERSION == 2 and
# blob layout version 1.  Regenerate ONLY on a deliberate, version-bumped
# format change:
#   t = MembershipTier(initial_capacity=16)
#   [t.insert(MembershipRule(100+i, 0x64400000+i)) for i in range(8)]
#   hashlib.sha256(t.serialize_bloom()).hexdigest()
_FROZEN_BLOB_SHA256 = (
    "55ac9129c034e334bf8381476b9f06fc734b92c2924a4021001303f35210be89"
)
_FROZEN_BLOB_HEX = (
    "5649464d010203000e7669662d6d656d62657273686970000000000000040000"
    "0000000000001700000000010200000000000100000008000000000000100040"
    "0000100000000000000000000005000000200400100000002080000000000000"
    "0000000000080400000000000000000000000000000000000000020000000000"
    "0000048000000000000000000000000102000000000000020000000000000000"
    "10000000000000"
)


def test_bloom_blob_layout_frozen():
    blob = _tier(8).serialize_bloom()
    assert blob.hex() == _FROZEN_BLOB_HEX
    assert hashlib.sha256(blob).hexdigest() == _FROZEN_BLOB_SHA256
    # The layout the hex pins: magic, blob version, family version tag.
    assert blob[:4] == b"VIFM"
    assert blob[4] == 1  # blob layout version
    assert blob[5] == FAMILY_VERSION


def test_bloom_blob_roundtrip():
    tier = _tier(8)
    clone = MembershipTier(initial_capacity=16)
    clone.load_bloom(tier.serialize_bloom())
    for i in range(8):
        assert clone.might_contain(_BLOCK_BASE + i)


def test_mixed_family_version_refused_loudly():
    """A blob stamped with another hash-family version must not load."""
    blob = bytearray(_tier(8).serialize_bloom())
    blob[5] = FAMILY_VERSION + 1
    with pytest.raises(MembershipVersionError, match="family version"):
        _tier(0).load_bloom(bytes(blob))


def test_unknown_blob_version_refused():
    blob = bytearray(_tier(8).serialize_bloom())
    blob[4] = 99
    with pytest.raises(MembershipVersionError):
        _tier(0).load_bloom(bytes(blob))


def test_wrong_seed_and_truncation_refused():
    tier = _tier(8)
    blob = tier.serialize_bloom()
    other = MembershipTier(initial_capacity=16, family_seed="other-seed")
    with pytest.raises(MembershipVersionError):
        other.load_bloom(blob)
    with pytest.raises(MembershipVersionError):
        _tier(0).load_bloom(blob[: len(blob) - 3])
    with pytest.raises(MembershipVersionError):
        _tier(0).load_bloom(b"NOPE" + blob[4:])


def test_bloom_deserialize_direct():
    tier = _tier(8)
    restored = BloomFilter.deserialize(tier.serialize_bloom(), tier.family)
    for i in range(8):
        assert restored.might_contain(tier._lanes(_BLOCK_BASE + i))


# -- FlowPattern.from_src_host equivalence pin -----------------------------------


def test_from_src_host_matches_parsed_pattern():
    for src_int in (0, 1, _BLOCK_BASE + 77, 0xFFFFFFFF):
        fast = FlowPattern.from_src_host(src_int)
        import ipaddress
        slow = FlowPattern(src_prefix=f"{ipaddress.ip_address(src_int)}/32")
        assert fast == slow
        assert fast.specificity == slow.specificity == 32
        for field in ("src_net_int", "src_prefix_len", "src_mask",
                      "dst_net_int", "dst_prefix_len", "dst_mask",
                      "src_version", "dst_version"):
            assert getattr(fast, field) == getattr(slow, field), field


def test_from_src_host_rejects_out_of_range():
    with pytest.raises(RuleError):
        FlowPattern.from_src_host(-1)
    with pytest.raises(RuleError):
        FlowPattern.from_src_host(1 << 32)


# -- decision memo across rebuilds (the latent-bug regression) -------------------


def _blocked_flow(src_int: int) -> FiveTuple:
    import ipaddress
    return FiveTuple(
        src_ip=str(ipaddress.ip_address(src_int)),
        dst_ip="198.18.0.9",
        src_port=4242,
        dst_port=80,
        protocol=Protocol.UDP,
    )


def test_memo_invalidated_on_membership_rebuild():
    """A memoized verdict must not survive a tier rebuild/resize.

    Regression: the decision memo was keyed only off install/remove; a
    rebuild (resize) re-homes every entry without a ruleset_version bump,
    so a stale memo could resurrect a pre-resize verdict.  The filter now
    registers a rebuild listener that clears the memo.
    """
    f = StatelessFilter(
        secret="memo-regress",
        decision_cache_size=1024,
        membership=MembershipTier(initial_capacity=16),
    )
    f.load_blocklist([(i + 1, _BLOCK_BASE + i) for i in range(8)])
    flow = _blocked_flow(_BLOCK_BASE)
    assert not f.decide_flow(flow).allowed  # memoized DROP
    version_before = f.ruleset_version
    # A content-neutral rebuild: no install/remove, no version bump...
    f.store.membership._rebuild(4096)
    assert f.ruleset_version == version_before
    # ...but the memo must have been flushed, not answered from cache.
    assert len(f._decision_cache) == 0
    assert not f.decide_flow(flow).allowed


def test_memo_cannot_resurrect_pre_reload_verdict():
    f = StatelessFilter(
        secret="memo-regress",
        decision_cache_size=1024,
        membership=MembershipTier(initial_capacity=16),
    )
    f.load_blocklist([(1, _BLOCK_BASE)])
    flow = _blocked_flow(_BLOCK_BASE)
    assert not f.decide_flow(flow).allowed
    f.reload_blocklist([(2, _BLOCK_BASE + 9)])  # wholesale swap: src unblocked
    assert f.decide_flow(flow).allowed
    assert not f.decide_flow(_blocked_flow(_BLOCK_BASE + 9)).allowed


def test_memo_resize_during_insert_burst_stays_correct():
    """Organic resizes (insert-driven) also flush the memo."""
    f = StatelessFilter(
        secret="memo-regress",
        decision_cache_size=4096,
        membership=MembershipTier(initial_capacity=16),
    )
    probes = []
    for i in range(600):
        f.install_rule(FilterRule(
            rule_id=i + 1,
            pattern=FlowPattern.from_src_host(_BLOCK_BASE + i),
            action=Action.DROP,
        ))
        if i % 50 == 0:
            flow = _blocked_flow(_BLOCK_BASE + i)
            assert not f.decide_flow(flow).allowed
            probes.append(flow)
    assert f.store.membership_stats().resizes >= 1
    for flow in probes:
        assert not f.decide_flow(flow).allowed
