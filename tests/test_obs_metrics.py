"""Unit tests for the observability core: instruments, registry, exposition."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    """A fresh registry installed as the process default, restored after."""
    fresh = MetricsRegistry()
    previous = obs.set_registry(fresh)
    yield fresh
    obs.set_registry(previous)


# -- instruments ------------------------------------------------------------


def test_counter_inc_and_set(registry):
    c = registry.counter("vif_test_things_total", help="things")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.set(2)
    assert c.value == 2


def test_counter_is_get_or_create(registry):
    a = registry.counter("vif_test_things_total", x="1")
    b = registry.counter("vif_test_things_total", x="1")
    other = registry.counter("vif_test_things_total", x="2")
    assert a is b
    assert a is not other


def test_gauge_moves_both_ways(registry):
    g = registry.gauge("vif_test_depth")
    g.set(10)
    g.dec(3)
    g.inc()
    assert g.value == 8


def test_histogram_buckets_and_observe(registry):
    h = registry.histogram("vif_test_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(55.55)
    assert h.bucket_counts == [1, 1, 1, 1]  # last slot is +Inf
    assert h.cumulative_counts() == [1, 2, 3, 4]


def test_histogram_family_buckets_fixed_at_creation(registry):
    first = registry.histogram("vif_test_seconds", buckets=(1.0, 2.0))
    second = registry.histogram(
        "vif_test_seconds", buckets=(9.0, 99.0), kind="other"
    )
    assert second.buckets == first.buckets == (1.0, 2.0)


def test_histogram_rejects_unsorted_buckets(registry):
    with pytest.raises(ValueError, match="sorted"):
        registry.histogram("vif_test_bad_seconds", buckets=(2.0, 1.0))


def test_kind_conflict_rejected(registry):
    registry.counter("vif_test_things_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("vif_test_things_total")


# -- registry aggregation -----------------------------------------------------


def test_total_sums_across_label_sets(registry):
    registry.counter("vif_test_things_total", x="1").inc(3)
    registry.counter("vif_test_things_total", x="2").inc(4)
    assert registry.total("vif_test_things_total") == 7
    assert registry.total("vif_absent_total") == 0


def test_get_does_not_create(registry):
    assert registry.get("vif_test_things_total") is None
    registry.counter("vif_test_things_total", x="1")
    assert registry.get("vif_test_things_total", x="1") is not None
    assert registry.get("vif_test_things_total", x="2") is None
    assert "vif_test_things_total" in registry.families()


# -- invariants ---------------------------------------------------------------


def test_invariants_report_violations(registry):
    state = {"ok": True}
    registry.register_invariant(
        "books", lambda: None if state["ok"] else "books cooked"
    )
    assert registry.check_invariants() == []
    state["ok"] = False
    violations = registry.check_invariants()
    assert violations == ["books: books cooked"]
    assert registry.check_invariants(["missing"]) == [
        "unknown invariant 'missing'"
    ]
    registry.unregister_invariant("books")
    assert registry.invariant_names == []


# -- exposition ---------------------------------------------------------------


def test_render_prometheus_format(registry):
    registry.counter(
        "vif_test_things_total", help="things seen", site="a"
    ).inc(3)
    registry.gauge("vif_test_depth").set(2)
    h = registry.histogram("vif_test_seconds", buckets=(0.5, 1.0))
    h.observe(0.25)
    h.observe(2.0)
    text = registry.render_prometheus()
    assert "# HELP vif_test_things_total things seen" in text
    assert "# TYPE vif_test_things_total counter" in text
    assert 'vif_test_things_total{site="a"} 3' in text
    assert "# TYPE vif_test_depth gauge" in text
    assert "vif_test_depth 2" in text
    assert "# TYPE vif_test_seconds histogram" in text
    assert 'vif_test_seconds_bucket{le="0.5"} 1' in text
    assert 'vif_test_seconds_bucket{le="1"} 1' in text
    assert 'vif_test_seconds_bucket{le="+Inf"} 2' in text
    assert "vif_test_seconds_count 2" in text


def test_label_values_escaped_per_prometheus_spec(registry):
    # Backslash, double-quote and newline in a label value must come out as
    # \\, \" and \n or the exposition is unparseable (regression: values
    # used to be interpolated raw).
    registry.counter(
        "vif_test_things_total", help="things", path='C:\\tmp\n"x"'
    ).inc()
    text = registry.render_prometheus()
    assert 'vif_test_things_total{path="C:\\\\tmp\\n\\"x\\""} 1' in text
    assert '\n"x"' not in text  # no raw newline mid-label


def test_histogram_sum_uses_canonical_value_formatting(registry):
    # Regression: _sum was rendered with !r ("2.0", "inf") instead of the
    # canonical _format_value used by every other sample line.
    h = registry.histogram("vif_test_seconds", buckets=(1.0,))
    h.observe(1.5)
    h.observe(0.5)
    text = registry.render_prometheus()
    assert "vif_test_seconds_sum 2\n" in text
    h.observe(float("inf"))
    assert "vif_test_seconds_sum +Inf\n" in registry.render_prometheus()


def test_snapshot_and_write_json(registry, tmp_path):
    registry.counter("vif_test_things_total", x="1").inc(3)
    registry.histogram("vif_test_seconds", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["schema"] == obs.SNAPSHOT_SCHEMA
    assert snap["series"]['vif_test_things_total{x="1"}']["value"] == 3
    assert snap["totals"]["vif_test_things_total"] == 3
    assert snap["histograms"]["vif_test_seconds"]["count"] == 1

    path = tmp_path / "snap.json"
    registry.write_json(str(path), extra={"bench": "unit"})
    payload = json.loads(path.read_text())
    assert payload["schema"] == obs.SNAPSHOT_SCHEMA
    assert payload["bench"] == "unit"


# -- module-level switches -----------------------------------------------------


def test_set_timing_round_trips():
    previous = obs.set_timing(True)
    try:
        assert obs.timing_enabled()
    finally:
        obs.set_timing(previous)
    assert obs.timing_enabled() == previous


def test_next_instance_label_is_unique():
    a = obs.next_instance_label("unit-test")
    b = obs.next_instance_label("unit-test")
    assert a != b
    assert a.startswith("unit-test-")


def test_instance_namespace_qualifies_labels():
    previous = obs.set_instance_namespace("shard-w7")
    try:
        label = obs.next_instance_label("unit-ns")
        assert label.startswith("shard-w7/unit-ns-")
    finally:
        obs.set_instance_namespace(previous)
    assert obs.get_instance_namespace() == previous
    assert "/" not in obs.next_instance_label("unit-ns")


# -- cross-process state export / merge ---------------------------------------


def test_export_state_merge_state_roundtrip():
    source = MetricsRegistry()
    source.counter("unit_merge_total", help="h", who="w0").inc(5)
    source.gauge("unit_merge_gauge", who="w0").set(3)
    hist = source.histogram("unit_merge_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)

    state = source.export_state()
    assert state["schema"] == obs.STATE_SCHEMA

    target = MetricsRegistry()
    target.counter("unit_merge_total", help="h", who="w0").inc(2)
    merged = target.merge_state(state)
    assert merged == 3
    # Additive on the shared series, created fresh otherwise.
    assert target.counter("unit_merge_total", who="w0").value == 7
    assert target.gauge("unit_merge_gauge", who="w0").value == 3
    merged_hist = target.histogram("unit_merge_seconds", buckets=(0.1, 1.0))
    assert merged_hist.count == 2
    assert merged_hist.sum == pytest.approx(0.55)

    # Merging the same state again keeps accumulating (callers dedupe).
    target.merge_state(state)
    assert target.counter("unit_merge_total", who="w0").value == 12


def test_merge_state_rejects_wrong_schema_and_bucket_layout():
    source = MetricsRegistry()
    source.histogram("unit_layout_seconds", buckets=(0.1, 1.0)).observe(0.5)
    state = source.export_state()

    target = MetricsRegistry()
    with pytest.raises(ValueError, match="schema"):
        target.merge_state({"schema": "bogus", "families": []})
    target.histogram("unit_layout_seconds", buckets=(0.2, 2.0))
    with pytest.raises(ValueError, match="bucket layout"):
        target.merge_state(state)


def test_span_noop_when_disabled():
    assert not obs.tracing_enabled()
    with obs.span("never.recorded") as record:
        assert record is None
    assert all(
        r.name != "never.recorded" for r in obs.get_tracer().records
    )


# -- exposition edge cases (pinned bytes) ------------------------------------
#
# These pin the exact exposition output for the historically buggy value
# classes: bucket-boundary observations, +Inf-only histograms, and
# non-finite scalar samples (int(nan)/int(-inf) used to raise inside
# _format_value, and snapshot() used to smuggle bare Infinity into JSON).


def test_bucket_boundary_observation_pins_exposition_bytes(registry):
    # `value <= bound` is inclusive: an observation exactly on a bucket
    # boundary belongs to that bucket, not the next one up.
    h = registry.histogram("unit_edge_seconds", buckets=(0.5, 1.0))
    h.observe(0.5)
    h.observe(1.0)
    assert registry.render_prometheus() == (
        "# TYPE unit_edge_seconds histogram\n"
        'unit_edge_seconds_bucket{le="0.5"} 1\n'
        'unit_edge_seconds_bucket{le="1"} 2\n'
        'unit_edge_seconds_bucket{le="+Inf"} 2\n'
        "unit_edge_seconds_sum 1.5\n"
        "unit_edge_seconds_count 2\n"
    )


def test_inf_only_histogram_pins_exposition_bytes(registry):
    h = registry.histogram("unit_inf_seconds", buckets=(1.0,))
    h.observe(float("inf"))
    assert registry.render_prometheus() == (
        "# TYPE unit_inf_seconds histogram\n"
        'unit_inf_seconds_bucket{le="1"} 0\n'
        'unit_inf_seconds_bucket{le="+Inf"} 1\n'
        "unit_inf_seconds_sum +Inf\n"
        "unit_inf_seconds_count 1\n"
    )
    snap = registry.snapshot()
    hist = snap["histograms"]["unit_inf_seconds"]
    assert hist["sum"] == "+Inf"  # stringified, never a bare JSON Infinity
    assert hist["count"] == 1
    json.dumps(snap, allow_nan=False)  # strict JSON round-trips


def test_nonfinite_gauge_values_render_and_snapshot(registry):
    registry.gauge("unit_pos").set(float("inf"))
    registry.gauge("unit_neg").set(float("-inf"))
    registry.gauge("unit_nan").set(float("nan"))
    text = registry.render_prometheus()
    assert "unit_pos +Inf\n" in text
    assert "unit_neg -Inf\n" in text
    assert "unit_nan NaN\n" in text
    from tests import promtext

    exposition = promtext.parse(text)
    assert exposition.value("unit_pos") == float("inf")
    assert exposition.value("unit_neg") == float("-inf")
    assert exposition.value("unit_nan") != exposition.value("unit_nan")

    snap = registry.snapshot()
    assert snap["series"]["unit_pos"]["value"] == "+Inf"
    assert snap["series"]["unit_neg"]["value"] == "-Inf"
    assert snap["series"]["unit_nan"]["value"] == "NaN"
    json.dumps(snap, allow_nan=False)


def test_large_integral_floats_keep_precision(registry):
    # Values at/above 1e15 must not round-trip through int() (repr keeps
    # the float form so the exposition stays faithful).
    registry.gauge("unit_big").set(1e15)
    assert "unit_big 1000000000000000.0\n" in registry.render_prometheus()
    registry.gauge("unit_small").set(2.0)
    assert "unit_small 2\n" in registry.render_prometheus()
