"""The synthetic Internet generator."""

import pytest

from repro.errors import ConfigurationError
from repro.interdomain.synthetic import (
    PAPER_REGIONS,
    SyntheticInternetConfig,
    generate_internet,
)
from repro.interdomain.topology import Tier


SMALL = SyntheticInternetConfig(
    tier1_per_region=1, tier2_per_region=5, stubs_per_region=20, seed=1
)


def test_counts_match_config():
    graph, ixps = generate_internet(SMALL)
    assert len(graph) == 5 * (1 + 5 + 20)
    assert len(ixps) == 5 * 5
    assert len(graph.ases_by_tier(Tier.TIER1)) == 5
    assert len(graph.ases_by_tier(Tier.TIER2)) == 25


def test_structure_is_valid():
    graph, _ = generate_internet(SMALL)
    assert graph.validate() == []


def test_tier1_full_mesh():
    graph, _ = generate_internet(SMALL)
    tier1s = graph.ases_by_tier(Tier.TIER1)
    for a in tier1s:
        for b in tier1s:
            if a != b:
                assert b in graph.peers[a]


def test_every_non_tier1_has_a_provider():
    graph, _ = generate_internet(SMALL)
    for asn, node in graph.nodes.items():
        if node.tier is Tier.TIER1:
            assert not graph.providers[asn]
        else:
            assert graph.providers[asn], f"AS{asn} has no provider"


def test_stub_providers_are_transit():
    graph, _ = generate_internet(SMALL)
    for asn in graph.ases_by_tier(Tier.STUB):
        for provider in graph.providers[asn]:
            assert graph.nodes[provider].tier is not Tier.STUB


def test_ixp_membership_skew():
    graph, ixps = generate_internet()
    by_region = {}
    for ixp in ixps:
        by_region.setdefault(ixp.region, []).append(ixp)
    for region, regional in by_region.items():
        ranked = sorted(regional, key=lambda x: -x.member_count)
        # The #1 IXP is markedly larger than the #5.
        assert ranked[0].member_count > 2 * ranked[-1].member_count


def test_top_ixps_have_foreign_members():
    graph, ixps = generate_internet()
    top = max(ixps, key=lambda x: x.member_count)
    foreign = [
        asn for asn in top.members if graph.nodes[asn].region != top.region
    ]
    assert foreign


def test_peer_edges_annotated_with_ixps():
    graph, ixps = generate_internet(SMALL)
    annotated = sum(1 for _ in graph.peering_ixps)
    assert annotated > 0
    # Every annotated peering is between members of the annotated IXP.
    index = {ixp.ixp_id: ixp for ixp in ixps}
    for edge, ids in graph.peering_ixps.items():
        a, b = sorted(edge)
        for ixp_id in ids:
            members = index[ixp_id].members
            assert a in members and b in members


def test_deterministic_generation():
    g1, i1 = generate_internet(SMALL)
    g2, i2 = generate_internet(SMALL)
    assert g1.ases() == g2.ases()
    assert g1.num_edges() == g2.num_edges()
    assert [x.members for x in i1] == [x.members for x in i2]


def test_seed_changes_topology():
    other = SyntheticInternetConfig(
        tier1_per_region=1, tier2_per_region=5, stubs_per_region=20, seed=2
    )
    g1, _ = generate_internet(SMALL)
    g2, _ = generate_internet(other)
    assert g1.num_edges() != g2.num_edges()


def test_default_regions_are_the_papers_five():
    assert PAPER_REGIONS == (
        "Europe", "North America", "South America", "Asia Pacific", "Africa"
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SyntheticInternetConfig(tier1_per_region=0)
    with pytest.raises(ConfigurationError):
        SyntheticInternetConfig(ixps_per_region=9)
