"""The end-to-end VIF session state machine."""

import pytest

from repro.core.distribution import RuleDistributionProtocol
from repro.core.enclave_filter import EnclaveFilter
from repro.core.controller import IXPController
from repro.core.rules import FilterRule, FlowPattern
from repro.core.session import SessionState, VIFSession
from repro.errors import (
    AttestationError,
    RuleValidationError,
    SessionAborted,
    SessionError,
)
from repro.tee.attestation import IASService
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet


def half_rule(rule_id=1):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80)),
        p_allow=0.5,
        requested_by=VICTIM,
    )


def test_lifecycle_happy_path(session, controller):
    assert session.state is SessionState.ATTESTED
    session.submit_rules([half_rule()])
    assert session.state is SessionState.ACTIVE
    packets = [make_packet(src_port=1024 + i) for i in range(100)]
    delivered = controller.carry(packets)
    session.observe_delivered(delivered)
    evidence = session.audit_round()
    assert evidence.clean
    session.close()
    assert session.state is SessionState.CLOSED


def test_submit_before_attest_rejected(rpki, ias):
    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession(VICTIM, rpki, ias, controller)
    with pytest.raises(SessionError):
        session.submit_rules([half_rule()])


def test_rpki_violation_rejected(session):
    foreign = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="198.51.100.0/24"),
        p_allow=0.5,
        requested_by=VICTIM,
    )
    with pytest.raises(RuleValidationError):
        session.submit_rules([foreign])
    assert session.state is SessionState.ATTESTED  # nothing installed


def test_attestation_failure_blocks_session(rpki, ias):
    class EvilFilter(EnclaveFilter):
        VERSION = "evil"

    controller = IXPController(ias)
    controller.launch_filters(1)
    # Swap in an enclave running the wrong code.
    platform = controller.enclaves[0].platform
    evil = platform.launch(EvilFilter(secret="x"))
    controller.enclaves[0] = evil
    session = VIFSession(VICTIM, rpki, ias, controller)
    with pytest.raises(AttestationError):
        session.attest_filters()
    assert session.state is SessionState.CREATED


def test_audit_detects_out_of_band_delivery(session, controller):
    session.submit_rules([half_rule()])
    packets = [make_packet(src_port=1024 + i) for i in range(50)]
    delivered = controller.carry(packets)
    session.observe_delivered(delivered)
    # The filtering network slips extra packets past the filter:
    session.observe_delivered([make_packet(src_port=9999)])
    evidence = session.audit_round()
    assert not evidence.clean
    assert session.state is SessionState.ABORTED


def test_aborted_session_rejects_everything(session, controller):
    session.submit_rules([half_rule()])
    session.observe_delivered([make_packet()])  # never forwarded by filter
    session.audit_round()
    assert session.state is SessionState.ABORTED
    with pytest.raises(SessionAborted):
        session.submit_rules([half_rule(2)])
    with pytest.raises(SessionAborted):
        session.audit_round()
    with pytest.raises(SessionAborted):
        session.close()


def test_audit_without_abort_option(session, controller):
    session.submit_rules([half_rule()])
    session.observe_delivered([make_packet()])
    evidence = session.audit_round(abort_on_evidence=False)
    assert not evidence.clean
    assert session.state is SessionState.ACTIVE


def test_manual_abort(session):
    session.abort()
    assert session.state is SessionState.ABORTED


def test_audit_uses_sealed_channel(session, controller):
    session.submit_rules([half_rule()])
    sketch = session.fetch_outgoing_log(0)
    assert sketch.total == 0  # nothing carried yet
    delivered = controller.carry([make_packet(src_port=1024 + i) for i in range(40)])
    sketch = session.fetch_outgoing_log(0)
    assert sketch.total == len(delivered)


def test_scale_out_attests_new_enclaves(rpki, ias):
    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    rules = [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(src_prefix=f"10.{i}.0.0/16",
                                dst_prefix=VICTIM_PREFIX),
            p_allow=1.0,
            requested_by=VICTIM,
        )
        for i in range(1, 9)
    ]
    session.submit_rules(rules)
    for i in range(1, 9):
        controller.carry([make_packet(src_ip=f"10.{i}.0.1", size=1500)])
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=20_000.0)
    session.scale_out(protocol, window_s=1.0)
    assert len(controller.enclaves) > 1
    assert len(session.attestation_reports) == len(controller.enclaves)
    # Audits keep working across the whole fleet.
    delivered = controller.carry(
        [make_packet(src_ip=f"10.{i}.0.1", src_port=2000 + i) for i in range(1, 9)]
    )
    session.observe_delivered(delivered)
    # Include the pre-scale-out traffic the victim also received.
    session.observe_delivered(
        [make_packet(src_ip=f"10.{i}.0.1", size=1500) for i in range(1, 9)]
    )
    assert session.audit_round().clean


def test_installed_rules_tracked(session):
    session.submit_rules([half_rule()])
    assert len(session.installed_rules) == 1
    session.submit_rules([half_rule(5)])
    assert {r.rule_id for r in session.installed_rules} == {1, 5}
