"""Failure injection: crashes, exhaustion, outages, misconfiguration.

Robustness behaviors the paper implies but never tests: what happens when
an enclave dies mid-session, when the EPC hard limit is hit, when the IAS
is unreachable for a platform, or when the two sides of an audit are
misconfigured."""

import pytest

from repro.core.controller import IXPController
from repro.core.enclave_filter import EnclaveFilter
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.core.session import VIFSession
from repro.errors import (
    AttestationError,
    EnclaveMemoryError,
    EnclaveSealedError,
)
from repro.lookup.memory_model import EnclaveMemoryModel
from repro.sketch.countmin import CountMinSketch
from repro.sketch.comparison import compare_sketches
from repro.tee.attestation import IASService
from repro.tee.enclave import Platform
from repro.util.units import MB
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet


def test_destroyed_enclave_fails_closed():
    """A crashed/killed enclave rejects every ECall — it cannot silently
    pass traffic unfiltered."""
    controller = IXPController(IASService())
    controller.launch_filters(1)
    controller.install_single_filter(
        RuleSet(
            [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
                        action=Action.DROP)]
        )
    )
    controller.enclaves[0].destroy()
    with pytest.raises(EnclaveSealedError):
        controller.carry([make_packet()])


def test_relaunched_enclave_needs_fresh_attestation(rpki, ias):
    """After a crash the platform relaunches the filter; the victim's old
    channel is gone and the new enclave must attest again."""
    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()

    # Crash and replace in-place (same slot, fresh program).
    controller.enclaves[0].destroy()
    platform = controller.enclaves[0].platform
    program = EnclaveFilter(secret="relaunched")
    controller.enclaves[0] = platform.launch(program)
    controller.programs[0] = program

    # Cached attestation refers to the dead enclave; re-attesting picks the
    # replacement up and re-binds the channel.
    attested = session.attest_filters()
    assert attested == 0  # index still marked attested...
    session.attestation_reports.clear()  # victim notices the crash
    session._channels.clear()
    assert session.attest_filters() == 1
    session.submit_rules(
        [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
                    p_allow=0.5, requested_by=VICTIM)]
    )


def test_epc_hard_limit_rejects_oversized_rule_set():
    """Installing far beyond EPC capacity fails loudly, not silently."""
    tiny = EnclaveMemoryModel(
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,
        epc_limit_bytes=8 * MB,
        performance_budget_bytes=6 * MB,
    )
    platform = Platform("small")
    program = EnclaveFilter(secret="s", memory_model=tiny)
    enclave = platform.launch(program)
    # The default EPC hard limit is 1 GiB; shrink it for the test.
    enclave.epc.hard_limit_bytes = 16 * MB
    rules = [
        FilterRule(rule_id=i, pattern=FlowPattern(dst_prefix=f"10.{i}.0.0/16"),
                   action=Action.DROP)
        for i in range(1, 40)
    ]
    with pytest.raises(EnclaveMemoryError):
        enclave.ecall("install_rules", rules)


def test_paging_state_visible_past_epc():
    """Filling past the (soft) EPC limit flips the paging flag the cost
    model keys on — the graceful-degradation path."""
    tiny = EnclaveMemoryModel(
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,
        epc_limit_bytes=5 * MB,
        performance_budget_bytes=4 * MB,
    )
    platform = Platform("small")
    program = EnclaveFilter(secret="s", memory_model=tiny)
    enclave = platform.launch(program)
    enclave.epc.epc_limit_bytes = 5 * MB
    rules = [
        FilterRule(rule_id=i, pattern=FlowPattern(dst_prefix=f"10.{i}.0.0/16"),
                   action=Action.DROP)
        for i in range(1, 10)
    ]
    enclave.ecall("install_rules", rules)
    assert enclave.epc.paging
    # The filter still answers (slowly on real hardware): fail-soft.
    assert enclave.ecall("process_packet", make_packet(dst_ip="10.1.0.1")) is False


def test_ias_outage_for_one_platform(rpki):
    """A platform the IAS cannot vouch for never joins the session."""
    ias = IASService()
    controller = IXPController(ias)
    controller.launch_filters(1)
    # Simulate provisioning loss: wipe the IAS's key table.
    ias._platform_keys.clear()
    session = VIFSession(VICTIM, rpki, ias, controller)
    with pytest.raises(AttestationError):
        session.attest_filters()


def test_sketch_seed_misconfiguration_fails_loud():
    """A victim whose local log uses the wrong hash-family seed gets an
    error, not a silently meaningless comparison."""
    a = CountMinSketch(2, 256, "vif/out")
    b = CountMinSketch(2, 256, "wrong-seed/out")
    with pytest.raises(ValueError):
        compare_sketches(a, b)


def test_ring_overflow_backpressure_accounting():
    """Saturating a pipeline's rings drops packets *with accounting* —
    nothing disappears untracked."""
    from repro.dataplane.pipeline import FilterPipeline

    pipeline = FilterPipeline(lambda p: True, ring_capacity=16)
    # Stuff the inbound NIC far beyond ring capacity, then run stages in a
    # pattern that never drains the RX ring fully.
    packets = [make_packet(src_port=1024 + i) for i in range(64)]
    pipeline.nic_in.receive_from_wire(packets)
    for _ in range(2):
        pipeline.rx_stage()
        pipeline.rx_stage()
        pipeline.filter_stage()
    # Conservation: every packet is either still queued, filtered (allowed
    # packets live on in the TX ring, counted once via stats.allowed),
    # dropped by policy, or dropped by ring overflow — and the counts add
    # up exactly.
    total_accounted = (
        pipeline.stats.allowed
        + pipeline.stats.dropped
        + pipeline.stats.ring_overflow_drops
        + len(pipeline.rx_ring)
        + len(pipeline.nic_in.rx_queue)
    )
    assert total_accounted == len(packets)
    assert pipeline.stats.ring_overflow_drops > 0  # the failure did happen


def test_audit_tolerance_session_survives_benign_loss(rpki, ias):
    """With a tolerance configured, single-packet benign loss between the
    IXP and the victim does not abort the contract."""
    controller = IXPController(ias)
    controller.launch_filters(1)
    session = VIFSession(VICTIM, rpki, ias, controller, audit_tolerance=1)
    session.attest_filters()
    session.submit_rules(
        [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
                    p_allow=1.0, requested_by=VICTIM)]
    )
    delivered = controller.carry([make_packet(src_port=1000 + i) for i in range(20)])
    session.observe_delivered(delivered[:-1])  # one packet lost en route
    assert session.audit_round().clean
