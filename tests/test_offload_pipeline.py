"""End-to-end behavior of the untrusted offload tier.

Four properties of the tentpole, pinned against live components (no mocked
auditing):

* **Conservation** — the pipeline's offload stage never loses a packet:
  ``offload_ingress == offload_drops + offload_sampled + offload_passed``
  and the whole-pipeline law extends across the new stage.
* **Desync regression** — a tier that missed a remove delta keeps dropping
  a now-legitimate source; the sampled re-verdicts disagree and the
  ``offload_bypass`` alert fires within the :func:`rounds_to_detection`
  bound.
* **Chaos** — both ``OFFLOAD_LIE`` modes are caught: ``drop-legit`` by
  re-verdict disagreement, ``hide-drops`` by the sampling-shortfall bound;
  and ten seeded no-fault runs fire zero false alerts.
* **Sharding** — per-worker tiers keep the sharded plane's verdicts
  bit-identical to the single-process reference, and a lying worker's
  disagreements surface in the merged metrics.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro import obs
from repro.dataplane.offload import (
    LIE_DROP_LEGIT,
    LIE_HIDE_DROPS,
    FastDropTier,
    OffloadAuditor,
    OffloadEngine,
    OffloadLie,
    VerifiableSampler,
    rounds_to_detection,
)
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.shard import ShardedDataPlane, run_single_process_reference
from repro.errors import ConfigurationError
from repro.lookup.membership import MembershipRule

BLOCK_BASE = 0x64400000   # 100.64.0.0
CLEAN_BASE = 0xC6336400   # 198.51.100.0


def _packet(src_int: int) -> Packet:
    return Packet(
        five_tuple=FiveTuple(
            src_ip=f"{src_int >> 24 & 255}.{src_int >> 16 & 255}."
                   f"{src_int >> 8 & 255}.{src_int & 255}",
            dst_ip="198.18.0.9",
            src_port=4000,
            dst_port=80,
            protocol=Protocol.UDP,
        ),
        size=64,
    )


def _tier(rate: float, seed: str, srcs: Sequence[int]) -> FastDropTier:
    sampler = VerifiableSampler(rate, seed=seed)
    tier = FastDropTier(sampler)
    tier.install_rules(
        [MembershipRule(rule_id=1000 + i, src_int=src) for i, src in enumerate(srcs)]
    )
    return tier


def _mixed_trace(blocked: Sequence[int], clean: Sequence[int], rounds: int = 3):
    trace: List[Packet] = []
    for _ in range(rounds):
        for src in blocked:
            trace.append(_packet(src))
        for src in clean:
            trace.append(_packet(src))
    return trace


# -- pipeline conservation ----------------------------------------------------


def test_pipeline_conservation_extends_over_the_offload_stage():
    blocked = [BLOCK_BASE + i for i in range(120)]
    clean = [CLEAN_BASE + i for i in range(40)]
    blocked_set = set(blocked)

    tier = _tier(0.1, "pipeline-conservation", blocked)
    auditor = OffloadAuditor(tier.sampler)
    pipeline = FilterPipeline(
        lambda p: p.five_tuple.src_ip_int not in blocked_set,
        offload=tier,
        offload_auditor=auditor,
    )
    trace = _mixed_trace(blocked, clean, rounds=4)
    out = pipeline.process(trace)

    s = pipeline.stats
    assert s.offload_ingress == len(trace)
    assert s.offload_ingress == s.offload_drops + s.offload_sampled + s.offload_passed
    assert s.offload_drops > 0
    assert s.offload_sampled > 0          # rate 0.1 over 120 sources
    # Clean traffic always comes out the other end; sampled redirects are
    # re-dropped by the filter, so the tier changed no verdict.
    assert len(out) == len(clean) * 4
    assert s.received == len(trace)
    pipeline.check_conservation()

    report, _ = auditor.close_round(1)
    assert report.disagreed == 0
    assert not report.shortfall


def test_offload_stage_books_balance_under_full_sampling():
    blocked = [BLOCK_BASE + i for i in range(50)]
    tier = _tier(1.0, "pipeline-full", blocked)
    auditor = OffloadAuditor(tier.sampler)
    pipeline = FilterPipeline(
        lambda p: False, offload=tier, offload_auditor=auditor
    )
    trace = [_packet(src) for src in blocked]
    pipeline.process(trace)
    s = pipeline.stats
    assert s.offload_drops == 0           # everything diverted
    assert s.offload_sampled == len(trace)
    pipeline.check_conservation()


# -- desync regression --------------------------------------------------------


def test_desynced_tier_is_detected_within_the_bound():
    """The tier missed a remove delta: 30 sources it still drops are now
    legitimate.  Sampled re-verdicts disagree; the typed ``offload_bypass``
    alert must land within rounds_to_detection(30, rate) audit rounds."""
    rate = 0.1
    stale = [BLOCK_BASE + i for i in range(30)]        # tier-only (desync)
    still_blocked = [BLOCK_BASE + 1000 + i for i in range(50)]
    enclave_blocked = set(still_blocked)               # enclave removed `stale`

    sampler = VerifiableSampler(rate, seed="desync")
    tier = FastDropTier(sampler)
    tier.install_rules(
        [
            MembershipRule(rule_id=i, src_int=src)
            for i, src in enumerate(stale + still_blocked)
        ]
    )
    timeline = obs.AuditTimeline(session_id="desync-test")
    engine = OffloadEngine(tier, OffloadAuditor(sampler, timeline=timeline))
    engine.bind(
        lambda burst: [
            p.five_tuple.src_ip_int not in enclave_blocked for p in burst
        ]
    )

    bound = rounds_to_detection(len(stale), rate)
    caught_at = None
    for round_id in range(1, bound + 1):
        engine.process_burst([_packet(src) for src in stale + still_blocked])
        report, alerts = engine.close_round(round_id)
        if any(a.kind == obs.ALERT_OFFLOAD_BYPASS for a in alerts):
            assert report.disagreed > 0
            caught_at = round_id
            break
    assert caught_at is not None, (
        f"desynced tier evaded {bound} audit rounds at rate {rate}"
    )
    assert caught_at <= bound
    # The estimate brackets the true stale-source count somewhere sane.
    est = engine.auditor.reports[caught_at - 1].misdrop_estimate
    assert est.ci_high >= est.estimate > 0


# -- chaos: both lie modes ----------------------------------------------------


def _lying_engine(rate: float, seed: str, blocked, timeline):
    sampler = VerifiableSampler(rate, seed=seed)
    tier = FastDropTier(sampler)
    tier.install_rules(
        [MembershipRule(rule_id=i, src_int=s) for i, s in enumerate(blocked)]
    )
    engine = OffloadEngine(tier, OffloadAuditor(sampler, timeline=timeline))
    blocked_set = set(blocked)
    engine.bind(
        lambda burst: [p.five_tuple.src_ip_int not in blocked_set for p in burst]
    )
    return engine


def test_drop_legit_lie_is_caught_by_reverdict_disagreement():
    blocked = [BLOCK_BASE + i for i in range(40)]
    clean = [CLEAN_BASE + i for i in range(200)]
    timeline = obs.AuditTimeline(session_id="lie-drop-legit")
    engine = _lying_engine(0.1, "lie-drop-legit", blocked, timeline)
    engine.inject_lie(OffloadLie(mode=LIE_DROP_LEGIT, fraction=0.5, seed="lie-1"))

    bound = rounds_to_detection(int(len(clean) * 0.5), 0.1)
    caught = False
    for round_id in range(1, bound + 1):
        engine.process_burst([_packet(s) for s in blocked + clean])
        _, alerts = engine.close_round(round_id)
        if any(a.kind == obs.ALERT_OFFLOAD_BYPASS for a in alerts):
            caught = True
            break
    assert caught, f"censoring tier evaded {bound} rounds"


def test_hide_drops_lie_is_caught_by_the_shortfall_bound():
    blocked = [BLOCK_BASE + i for i in range(200)]
    timeline = obs.AuditTimeline(session_id="lie-hide-drops")
    engine = _lying_engine(0.1, "lie-hide-drops", blocked, timeline)
    engine.inject_lie(OffloadLie(mode=LIE_HIDE_DROPS, fraction=1.0, seed="lie-2"))

    engine.process_burst([_packet(s) for s in blocked])
    report, alerts = engine.close_round(1)
    assert report.sampled == 0
    assert report.shortfall, "200 drop flows at rate 0.1 must trip the bound"
    assert any(a.kind == obs.ALERT_OFFLOAD_BYPASS for a in alerts)


@pytest.mark.parametrize("seed_index", range(10))
def test_honest_tier_never_false_alerts(seed_index):
    """Ten seeded no-fault runs: zero ``offload_bypass`` alerts."""
    blocked = [BLOCK_BASE + 17 * seed_index + i for i in range(150)]
    clean = [CLEAN_BASE + i for i in range(30)]
    timeline = obs.AuditTimeline(session_id=f"no-fault-{seed_index}")
    engine = _lying_engine(0.1, f"no-fault-{seed_index}", blocked, timeline)

    for round_id in range(1, 6):
        engine.process_burst([_packet(s) for s in blocked + clean])
        report, alerts = engine.close_round(round_id)
        assert report.disagreed == 0
        assert not report.shortfall
        assert alerts == []
    assert timeline.alerts == []


# -- sharded data plane -------------------------------------------------------


def test_shard_offload_verdicts_match_single_process_reference():
    blocklist = [(2000 + i, BLOCK_BASE + i) for i in range(300)]
    trace = _mixed_trace(
        [BLOCK_BASE + i for i in range(300)],
        [CLEAN_BASE + i for i in range(60)],
        rounds=2,
    )
    with ShardedDataPlane(
        [],
        num_workers=2,
        decision_secret="shard-offload",
        batch_size=64,
        blocklist=blocklist,
        offload_sample_rate=0.1,
        offload_seed="shard-offload-seed",
    ) as plane:
        assert plane.offload_enabled
        got = plane.process(trace)
    reference = run_single_process_reference(
        [], trace, decision_secret="shard-offload", blocklist=blocklist
    )
    assert [bool(v) for v in got] == [bool(v) for v in reference.verdicts]


def test_shard_offload_lie_surfaces_in_merged_metrics():
    blocklist = [(2000 + i, BLOCK_BASE + i) for i in range(50)]
    clean = [CLEAN_BASE + i for i in range(200)]
    trace = _mixed_trace([BLOCK_BASE + i for i in range(50)], clean, rounds=2)
    with ShardedDataPlane(
        [],
        num_workers=2,
        decision_secret="shard-lie",
        batch_size=64,
        blocklist=blocklist,
        offload_sample_rate=0.1,
        offload_seed="shard-lie-seed",
        offload_round_batches=1,
    ) as plane:
        plane.inject_offload_lie(
            OffloadLie(mode=LIE_DROP_LEGIT, fraction=0.5, seed="shard-lie")
        )
        plane.process(trace)
    totals = obs.get_registry().snapshot()["totals"]
    assert totals.get("vif_offload_disagreements_total", 0) > 0


def test_shard_rejects_offload_lie_when_disabled():
    with ShardedDataPlane(
        [], num_workers=1, decision_secret="no-offload"
    ) as plane:
        assert not plane.offload_enabled
        with pytest.raises(ConfigurationError):
            plane.inject_offload_lie(
                OffloadLie(mode=LIE_HIDE_DROPS, seed="nope")
            )
