"""Traffic generation."""

import pytest

from repro.dataplane.packet import Protocol
from repro.dataplane.pktgen import FlowSpec_, PacketGenerator, TrafficProfile


def test_uniform_flows_are_distinct():
    gen = PacketGenerator(0)
    flows = gen.uniform_flows(1000)
    tuples = {f.five_tuple for f in flows}
    assert len(tuples) == 1000
    assert all(f.five_tuple.dst_port == 80 for f in flows)


def test_uniform_flows_ingress_round_robin():
    gen = PacketGenerator(0)
    flows = gen.uniform_flows(6, ingress_ases=(1, 2, 3))
    assert [f.ingress_as for f in flows] == [1, 2, 3, 1, 2, 3]


def test_uniform_flows_validation():
    with pytest.raises(ValueError):
        PacketGenerator(0).uniform_flows(0)


def test_flow_spec_make_packet():
    gen = PacketGenerator(0)
    flow = gen.uniform_flows(1, packet_size=512)[0]
    packet = flow.make_packet()
    assert packet.size == 512
    assert packet.five_tuple == flow.five_tuple


def test_traffic_profile_weighted_mix():
    gen = PacketGenerator(7)
    attack = gen.uniform_flows(10, dst_port=53, protocol=Protocol.UDP)
    legit = gen.uniform_flows(10, dst_port=443)
    profile = gen.mixed_profile(attack, legit, attack_fraction=0.9)
    packets = list(profile.packets(2000))
    udp = sum(1 for p in packets if p.five_tuple.protocol is Protocol.UDP)
    assert 0.85 < udp / len(packets) < 0.95


def test_traffic_profile_deterministic():
    gen = PacketGenerator(7)
    flows = gen.uniform_flows(5)
    p1 = TrafficProfile(flows=list(flows), seed=3)
    p2 = TrafficProfile(flows=list(flows), seed=3)
    assert [p.five_tuple for p in p1.packets(50)] == [
        p.five_tuple for p in p2.packets(50)
    ]


def test_profile_validation():
    gen = PacketGenerator(0)
    with pytest.raises(ValueError):
        list(TrafficProfile().packets(5))
    with pytest.raises(ValueError):
        TrafficProfile().add_flow(
            FlowSpec_(five_tuple=gen.uniform_flows(1)[0].five_tuple, weight=0)
        )
    with pytest.raises(ValueError):
        gen.mixed_profile([], gen.uniform_flows(1), 0.5)
    with pytest.raises(ValueError):
        gen.mixed_profile(gen.uniform_flows(1), gen.uniform_flows(1), 1.5)


def test_constant_stream():
    gen = PacketGenerator(0)
    flow = gen.uniform_flows(1)[0]
    packets = gen.constant_stream(flow, 10)
    assert len(packets) == 10
    assert len({p.five_tuple for p in packets}) == 1
