"""Adversary models and end-to-end attack scenarios.

These are the paper's security claims as executable checks: each bypass
attack is detected by exactly the party section III-B says detects it; the
Goal-1/Goal-2 rule violations succeed silently only against the unverified
baseline.
"""

import pytest

from repro.adversary import (
    BypassConfig,
    RuleTampering,
    dns_amplification_flows,
    mirai_flood_flows,
    run_bypass_scenario,
    run_discrimination_scenario,
    run_inaccurate_filtering_scenario,
)
from repro.adversary.filtering_network import UnverifiedFilteringNetwork
from repro.core.rules import FilterRule, FlowPattern, RuleSet
from repro.dataplane.packet import Protocol
from tests.conftest import VICTIM, VICTIM_PREFIX

AS_A, AS_B = 64500, 64501


@pytest.fixture(scope="module")
def rule():
    return FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80), protocol=Protocol.TCP
        ),
        p_allow=0.5,
        requested_by=VICTIM,
    )


@pytest.fixture(scope="module")
def flows():
    return mirai_flood_flows(300, ingress_ases=(AS_A, AS_B))


# -- attack traffic builders ------------------------------------------------------


def test_dns_amplification_flows_shape():
    flows = dns_amplification_flows(200, ingress_ases=(1, 2))
    assert len(flows) == 200
    assert all(f.five_tuple.protocol is Protocol.UDP for f in flows)
    assert all(f.five_tuple.src_port == 53 for f in flows)
    assert all(f.packet_size == 1024 for f in flows)
    assert len({f.five_tuple.src_ip for f in flows}) == 200
    assert {f.ingress_as for f in flows} == {1, 2}


def test_mirai_flows_shape():
    flows = mirai_flood_flows(150)
    assert len(flows) == 150
    assert all(f.five_tuple.protocol is Protocol.TCP for f in flows)
    assert all(f.five_tuple.dst_port == 80 for f in flows)
    assert all(f.packet_size == 64 for f in flows)


def test_attack_builders_deterministic():
    assert [f.five_tuple for f in mirai_flood_flows(50)] == [
        f.five_tuple for f in mirai_flood_flows(50)
    ]
    with pytest.raises(ValueError):
        mirai_flood_flows(0)
    with pytest.raises(ValueError):
        dns_amplification_flows(0)


# -- the detection matrix ------------------------------------------------------------


def test_honest_run_is_clean(rule, flows):
    result = run_bypass_scenario([rule], flows)
    assert not result.detected
    assert result.victim_evidence.clean
    assert all(e.clean for e in result.neighbor_evidence.values())
    # Roughly half the connections are delivered.
    assert 0.4 < result.delivered_packets / result.sent_packets < 0.6


def test_drop_after_filtering_detected_by_victim(rule, flows):
    result = run_bypass_scenario(
        [rule], flows, bypass=BypassConfig(drop_after_filtering=0.3)
    )
    assert result.victim_evidence.suspected_attacks == ["drop-after-filtering"]
    assert all(e.clean for e in result.neighbor_evidence.values())


def test_injection_after_filtering_detected_by_victim(rule, flows):
    result = run_bypass_scenario(
        [rule], flows, bypass=BypassConfig(inject_after_filtering=0.5)
    )
    assert result.victim_evidence.suspected_attacks == [
        "injection-after-filtering"
    ]


def test_drop_before_filtering_detected_by_the_right_neighbor(rule, flows):
    result = run_bypass_scenario(
        [rule], flows, bypass=BypassConfig(drop_before_filtering={AS_A: 0.4})
    )
    # The victim's outgoing-log audit cannot see this attack...
    assert result.victim_evidence.clean
    # ...but the discriminated neighbor can, and the other one stays clean.
    assert result.neighbor_evidence[AS_A].suspected_attacks == [
        "drop-before-filtering"
    ]
    assert result.neighbor_evidence[AS_B].clean


def test_goal2_skip_filter_detected(rule, flows):
    result = run_inaccurate_filtering_scenario(
        [rule], flows, skip_filter_fraction=0.3
    )
    assert result.detected
    assert "injection-after-filtering" in result.victim_evidence.suspected_attacks


def test_tiny_bypass_still_detected(rule, flows):
    """Even a 2% skim is visible — sketches are exact counters here."""
    result = run_bypass_scenario(
        [rule], flows, bypass=BypassConfig(drop_after_filtering=0.02)
    )
    assert result.detected


# -- the unverified baseline -----------------------------------------------------------


def test_goal1_discrimination_succeeds_silently(rule, flows):
    tampering = RuleTampering(per_as_p_allow={AS_A: 0.2, AS_B: 0.8})
    result = run_discrimination_scenario(rule, flows, tampering=tampering,
                                         packets_per_flow=2)
    assert result.per_as_delivery_rate[AS_A] < 0.35
    assert result.per_as_delivery_rate[AS_B] > 0.65
    assert result.max_divergence() > 0.2


def test_goal2_inaccurate_execution_on_unverified(rule, flows):
    tampering = RuleTampering(global_p_allow=0.9)  # barely filters
    result = run_discrimination_scenario(rule, flows, tampering=tampering)
    for rate in result.per_as_delivery_rate.values():
        assert rate > 0.8


def test_unverified_honest_matches_requested(rule, flows):
    result = run_discrimination_scenario(rule, flows, packets_per_flow=2)
    assert result.max_divergence() < 0.1


def test_unverified_network_forwards_unmatched(rule):
    network = UnverifiedFilteringNetwork(RuleSet([rule]))
    other = mirai_flood_flows(10, victim_ip="198.51.100.9")
    delivered = network.carry([f.make_packet() for f in other])
    assert len(delivered) == 10
