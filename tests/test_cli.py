"""The command-line interface and the experiment registry."""

import pytest

from repro.cli import main
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)


def test_registry_covers_every_paper_artifact():
    keys = set(EXPERIMENTS)
    assert {
        "fig3", "fig8", "latency", "fig14", "table1", "gap", "fig9",
        "table2", "fig11", "table3", "attestation", "cost", "bypass",
    } <= keys


def test_get_experiment_unknown_key():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_list_experiments_ordered_and_described():
    experiments = list_experiments()
    assert len(experiments) == len(EXPERIMENTS)
    for experiment in experiments:
        assert experiment.paper_ref and experiment.description


def test_run_experiment_returns_table():
    result = run_experiment("cost")
    assert result.key == "cost"
    assert "500" in result.output and "servers" in result.output


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "Fig 11" in out


def test_cli_run_single(capsys):
    assert main(["run", "attestation"]) == 0
    out = capsys.readouterr().out
    assert "Appendix G" in out and "3.04" in out


def test_cli_run_unknown(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_fleet_sim(capsys):
    assert main([
        "fleet-sim", "--fleet-size", "4", "--rules", "8", "--rounds", "4",
        "--kill", "0.25", "--ias-outage", "2", "--seed", "cli-test",
    ]) == 0
    out = capsys.readouterr().out
    assert "fault r2: crash" in out
    assert "fleet_unfiltered_packets     0" in out
    assert "invariant_violations         0" in out
    assert "allocation_valid             True" in out


def test_cli_fleet_sim_is_deterministic(capsys):
    args = ["fleet-sim", "--fleet-size", "3", "--rules", "6",
            "--rounds", "3", "--seed", "det"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_cli_fleet_sim_rejects_bad_sizes(capsys):
    assert main(["fleet-sim", "--fleet-size", "0"]) == 2
    assert "must be positive" in capsys.readouterr().err


def test_cli_metrics(capsys, tmp_path):
    json_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "round.trace.json"
    assert main([
        "metrics", "--fleet-size", "2", "--rules", "4", "--rounds", "3",
        "--seed", "cli-metrics",
        "--json", str(json_path), "--trace", str(trace_path),
    ]) == 0
    out = capsys.readouterr().out
    # Prometheus exposition for the core families.
    assert "# TYPE vif_pipeline_received_total counter" in out
    assert "# TYPE vif_tee_ecalls_total counter" in out
    assert "# TYPE vif_fleet_failovers_total counter" in out
    assert "# TYPE vif_tee_ecall_seconds histogram" in out
    assert 'vif_tee_ecall_seconds_bucket' in out

    import json

    snapshot = json.loads(json_path.read_text())
    assert snapshot["schema"] == "vif-metrics-v1"
    assert snapshot["command"] == "metrics"
    assert snapshot["totals"]["vif_fleet_failovers_total"] >= 1
    assert any(
        k.startswith("vif_tee_ecall_seconds") for k in snapshot["histograms"]
    )

    trace = json.loads(trace_path.read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert "fleet.round" in names and "ecall.process_burst" in names


def test_cli_metrics_rejects_bad_sizes(capsys):
    assert main(["metrics", "--fleet-size", "0"]) == 2
    assert "must be positive" in capsys.readouterr().err


def test_cli_fleet_sim_metrics_json(capsys, tmp_path):
    path = tmp_path / "fleet.metrics.json"
    assert main([
        "fleet-sim", "--fleet-size", "3", "--rules", "6", "--rounds", "3",
        "--seed", "cli-snap", "--metrics-json", str(path),
    ]) == 0
    capsys.readouterr()

    import json

    snapshot = json.loads(path.read_text())
    assert snapshot["schema"] == "vif-metrics-v1"
    assert snapshot["command"] == "fleet-sim"
    assert snapshot["summary"]["fleet_unfiltered_packets"] == 0


def test_cli_fleet_sim_journal_and_audit(capsys, tmp_path):
    path = tmp_path / "fleet.journal.jsonl"
    args = ["fleet-sim", "--fleet-size", "4", "--rules", "8", "--rounds", "4",
            "--kill", "0.25", "--seed", "cli-journal",
            "--journal", str(path)]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "wrote audit journal" in err

    lines = path.read_text()
    assert '"schema":"vif-events-v1"' in lines
    assert '"type":"fault_injected"' in lines
    assert '"type":"failover"' in lines

    # Same seed twice: byte-identical journal artifact.
    path2 = tmp_path / "fleet2.journal.jsonl"
    assert main(args[:-1] + [str(path2)]) == 0
    capsys.readouterr()
    assert path2.read_bytes() == path.read_bytes()

    # The report renders (no alerts in a fault-only run: exit 0) and is
    # itself deterministic.
    assert main(["audit", str(path)]) == 0
    first = capsys.readouterr().out
    assert "fault_injected kind=crash" in first
    assert "failover relaunched=" in first
    assert "alerts: 0" in first
    assert main(["audit", str(path)]) == 0
    assert capsys.readouterr().out == first


def test_cli_audit_rejects_bad_journal(capsys, tmp_path):
    assert main(["audit", str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot read journal" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema":"other"}\n')
    assert main(["audit", str(bad)]) == 2
    assert "schema" in capsys.readouterr().err


def test_cli_fast_experiments_run(capsys):
    # The sub-second experiments, end to end through the CLI.
    for key in ("fig3", "fig8", "latency", "fig14", "table3"):
        assert main(["run", key]) == 0
    out = capsys.readouterr().out
    assert len([l for l in out.splitlines() if l.startswith("=== ")]) == 5
