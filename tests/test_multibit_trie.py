"""The multi-bit trie — must agree exactly with the linear RuleSet scan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.dataplane.packet import FiveTuple, Protocol
from repro.errors import LookupError_
from repro.lookup.multibit_trie import MultiBitTrie


def flow(dst_ip="203.0.113.10", dst_port=80, src_ip="10.0.0.1", src_port=999):
    return FiveTuple(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port,
        protocol=Protocol.TCP,
    )


def rule(rule_id, dst_prefix="0.0.0.0/0", **kw):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=dst_prefix, **kw),
        action=Action.DROP,
    )


def test_lookup_exact_prefix():
    trie = MultiBitTrie()
    trie.insert(rule(1, "203.0.113.0/24"))
    assert trie.lookup(flow()).rule_id == 1
    assert trie.lookup(flow(dst_ip="198.51.100.1")) is None


def test_lookup_most_specific_among_nested_prefixes():
    trie = MultiBitTrie()
    trie.insert(rule(1, "203.0.0.0/8"))
    trie.insert(rule(2, "203.0.113.0/24"))
    trie.insert(rule(3, "203.0.113.10/32"))
    assert trie.lookup(flow()).rule_id == 3
    assert trie.lookup(flow(dst_ip="203.0.113.99")).rule_id == 2
    assert trie.lookup(flow(dst_ip="203.9.9.9")).rule_id == 1


def test_non_stride_aligned_prefix():
    trie = MultiBitTrie(stride_bits=8)
    trie.insert(rule(1, "203.0.112.0/20"))  # /20 is not a multiple of 8
    assert trie.lookup(flow(dst_ip="203.0.113.5")).rule_id == 1
    assert trie.lookup(flow(dst_ip="203.0.128.5")) is None


def test_duplicate_insert_rejected():
    trie = MultiBitTrie()
    trie.insert(rule(1))
    with pytest.raises(LookupError_):
        trie.insert(rule(1))


def test_remove():
    trie = MultiBitTrie()
    r = rule(1, "203.0.113.0/24")
    trie.insert(r)
    trie.remove(r)
    assert trie.lookup(flow()) is None
    assert len(trie) == 0
    with pytest.raises(LookupError_):
        trie.remove(r)


def test_batch_insert_and_len():
    trie = MultiBitTrie()
    rules = [rule(i, f"10.{i}.0.0/16") for i in range(50)]
    assert trie.insert_batch(rules) == 50
    assert len(trie) == 50
    assert 25 in trie and 99 not in trie


def test_stats():
    trie = MultiBitTrie()
    trie.insert_batch(rule(i, f"10.{i}.0.0/16") for i in range(10))
    stats = trie.stats()
    assert stats.num_rules == 10
    assert stats.num_nodes >= 3
    assert stats.max_depth >= 2


def test_rules_listing_sorted():
    trie = MultiBitTrie()
    trie.insert(rule(5, "10.0.0.0/8"))
    trie.insert(rule(1, "11.0.0.0/8"))
    assert [r.rule_id for r in trie.rules()] == [1, 5]


def test_various_strides_agree():
    rules = [rule(i, f"10.{i}.{i}.0/24") for i in range(20)]
    tries = []
    for stride in (1, 2, 4, 8, 16):
        trie = MultiBitTrie(stride_bits=stride)
        trie.insert_batch(rules)
        tries.append(trie)
    probe = flow(dst_ip="10.7.7.9")
    results = {t.lookup(probe).rule_id for t in tries}
    assert results == {7}


def test_stride_validation():
    with pytest.raises(ValueError):
        MultiBitTrie(stride_bits=3)


_octet = st.integers(min_value=0, max_value=255)


@settings(max_examples=50, deadline=None)
@given(
    prefixes=st.lists(
        st.tuples(_octet, _octet, st.sampled_from([8, 12, 16, 20, 24, 28, 32])),
        min_size=1,
        max_size=15,
    ),
    probe_octets=st.tuples(_octet, _octet, _octet, _octet),
)
def test_trie_agrees_with_linear_scan(prefixes, probe_octets):
    """For random prefix rules and probes: trie == RuleSet reference."""
    rules = []
    for i, (a, b, plen) in enumerate(prefixes):
        rules.append(rule(i, f"{a}.{b}.0.0/{min(plen, 16)}"))
    trie = MultiBitTrie()
    reference = RuleSet()
    for r in rules:
        trie.insert(r)
        reference.add(r)
    probe = flow(dst_ip=".".join(str(o) for o in probe_octets))
    expected = reference.match(probe)
    actual = trie.lookup(probe)
    if expected is None:
        assert actual is None
    else:
        assert actual is not None and actual.rule_id == expected.rule_id


class TestFailedInsertLeavesNoOrphans:
    """A rejected insert must not allocate interior nodes or skew counters."""

    def test_duplicate_insert_allocates_no_nodes(self):
        trie = MultiBitTrie()
        trie.insert(rule(1, "203.0.113.0/24"))
        before = trie.stats()
        # Same id, different (deeper) prefix: the walk for this prefix would
        # allocate fresh interior nodes if validation ran after it.
        with pytest.raises(LookupError_):
            trie.insert(rule(1, "198.51.100.0/24"))
        after = trie.stats()
        assert after == before
        assert trie._num_nodes == after.num_nodes
        assert len(trie) == 1

    def test_batch_with_internal_duplicate_allocates_no_orphan_path(self):
        trie = MultiBitTrie()
        batch = [
            rule(1, "203.0.113.0/24"),
            rule(2, "198.51.100.0/24"),
            rule(2, "192.0.2.0/24"),  # duplicate id, distinct prefix
        ]
        with pytest.raises(LookupError_):
            trie.insert_batch(batch)
        stats = trie.stats()
        # The failed third insert must not have materialized 192.0.2.0/24's
        # path: incremental counter and walked count agree, and the node
        # count is exactly the two inserted /24 paths plus the root.
        assert trie._num_nodes == stats.num_nodes == 7
        assert len(trie) == 2
        assert trie.lookup(flow(dst_ip="192.0.2.5")) is None

    def test_counters_stay_consistent_after_many_failed_inserts(self):
        trie = MultiBitTrie(stride_bits=4)
        trie.insert(rule(1, "10.0.0.0/8"))
        for i in range(20):
            with pytest.raises(LookupError_):
                trie.insert(rule(1, f"10.{i}.{i}.0/28"))
        assert trie._num_nodes == trie.stats().num_nodes
        assert len(trie) == 1
