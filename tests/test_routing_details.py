"""Fine-grained routing-policy behaviors: tie-breaking, preference order,
and reconfiguration corner cases."""

from repro.interdomain.routing import RouteKind, as_path, route_tree
from repro.interdomain.topology import ASGraph, Tier


def ladder() -> ASGraph:
    r"""Victim 9 below two parallel providers with different AS numbers.

        1          2      (tier-1 peers)
        |          |
        3          4      (both providers of 9)
         \        /
             9
    """
    g = ASGraph()
    for asn, tier in ((1, Tier.TIER1), (2, Tier.TIER1),
                      (3, Tier.TIER2), (4, Tier.TIER2)):
        g.add_as(asn, "E", tier)
    g.add_as(9, "E", Tier.STUB)
    g.add_p2p(1, 2)
    g.add_p2c(1, 3)
    g.add_p2c(2, 4)
    g.add_p2c(3, 9)
    g.add_p2c(4, 9)
    return g


def test_equal_length_customer_routes_break_on_lower_asn():
    routes = route_tree(ladder(), 9)
    # 1 hears the route via its customer 3; 2 via 4 — both unique.  But a
    # shared upper AS would have two equal choices; add one to check.
    g = ladder()
    g.add_as(5, "E", Tier.TIER1)
    g.add_p2c(5, 3)
    g.add_p2c(5, 4)
    routes = route_tree(g, 9)
    assert routes[5].kind is RouteKind.CUSTOMER
    assert routes[5].next_hop == 3  # lower next-hop ASN wins the tie


def test_shorter_customer_route_beats_longer():
    g = ladder()
    # Give 1 a direct customer edge to 9: the 2-hop route via 3 loses.
    g.add_p2c(1, 9)
    routes = route_tree(g, 9)
    assert routes[1].next_hop == 9
    assert routes[1].length == 1


def test_peer_route_preferred_over_shorter_provider_route():
    """Preference is strictly customer > peer > provider, regardless of
    AS-path length (Gao-Rexford rule 1 beats rule 2)."""
    g = ASGraph()
    for asn, tier in ((1, Tier.TIER1), (2, Tier.TIER1), (3, Tier.TIER2)):
        g.add_as(asn, "E", tier)
    g.add_as(9, "E", Tier.STUB)
    g.add_p2c(1, 9)     # 1 has the customer route
    g.add_p2c(1, 3)
    g.add_p2p(2, 1)     # 2 peers with 1 -> peer route, length 2
    g.add_p2c(2, 3)     # 3 could go via provider 2... but it prefers:
    routes = route_tree(g, 9)
    # 3's options: provider 1 (length 2) or provider 2 (length 3 via peer).
    assert routes[3].kind is RouteKind.PROVIDER
    assert routes[3].next_hop == 1
    # 2 itself holds a peer route even though a provider path may be longer.
    assert routes[2].kind is RouteKind.PEER


def test_route_tree_is_deterministic():
    g = ladder()
    first = route_tree(g, 9)
    second = route_tree(g, 9)
    assert {a: (r.kind, r.length, r.next_hop) for a, r in first.items()} == {
        a: (r.kind, r.length, r.next_hop) for a, r in second.items()
    }


def test_paths_never_loop():
    g = ladder()
    routes = route_tree(g, 9)
    for source in g.nodes:
        path = as_path(routes, source)
        assert path is not None
        assert len(path) == len(set(path))  # no repeated AS


def test_removing_an_as_reroutes_around_it():
    g = ladder()
    before = as_path(route_tree(g, 9), 1)
    assert before == (1, 3, 9)
    poisoned = g.without_as(3)
    after = as_path(route_tree(poisoned, 9), 1)
    assert after is not None and 3 not in after
    assert after == (1, 2, 4, 9)
