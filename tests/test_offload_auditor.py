"""The verifiable sampler, the 1/rate estimator, and the detection bound.

The offload tier's trust story rests on three pieces of math this module
pins: the sample predicate is a pure seeded function of the flow key (any
party can recompute it), the sampled disagreement count scales to a true
misdrop estimate with honest confidence bounds, and a lying tier is caught
within a predictable number of rounds.  Plus the zero-cost end of the
trade-off: at ``rate == 1.0`` the tiered path is *byte-identical* to the
full enclave path.
"""

from __future__ import annotations

import math

import pytest

from repro.core.enclave_filter import EnclaveFilter
from repro.dataplane.offload import (
    FastDropTier,
    OffloadAuditor,
    OffloadEngine,
    SamplingEstimate,
    VerifiableSampler,
    rounds_to_detection,
)
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from repro.lookup.membership import MembershipRule

RATES = (1.0, 0.1, 0.01)


def _packet(src_int: int, dst_ip: str = "198.18.0.9") -> Packet:
    return Packet(
        five_tuple=FiveTuple(
            src_ip=f"{src_int >> 24 & 255}.{src_int >> 16 & 255}."
                   f"{src_int >> 8 & 255}.{src_int & 255}",
            dst_ip=dst_ip,
            src_port=1234,
            dst_port=80,
            protocol=Protocol.UDP,
        ),
        size=64,
    )


# -- VerifiableSampler --------------------------------------------------------


def test_sampler_is_deterministic_across_instances():
    keys = [f"flow-{i}".encode() for i in range(500)]
    a = VerifiableSampler(0.3, seed="seed-A")
    b = VerifiableSampler(0.3, seed="seed-A")
    assert [a.samples(k) for k in keys] == [b.samples(k) for k in keys]


def test_sampler_seed_changes_the_sample_set():
    keys = [f"flow-{i}".encode() for i in range(500)]
    a = VerifiableSampler(0.3, seed="seed-A")
    b = VerifiableSampler(0.3, seed="seed-B")
    assert [a.samples(k) for k in keys] != [b.samples(k) for k in keys]


def test_sampler_rate_extremes():
    keys = [f"flow-{i}".encode() for i in range(200)]
    never = VerifiableSampler(0.0, seed="x")
    always = VerifiableSampler(1.0, seed="x")
    assert not any(never.samples(k) for k in keys)
    assert all(always.samples(k) for k in keys)


def test_sampler_empirical_fraction_tracks_rate():
    sampler = VerifiableSampler(0.1, seed="fraction")
    n = 20_000
    hit = sum(sampler.samples(i.to_bytes(4, "big")) for i in range(n))
    assert abs(hit / n - 0.1) < 0.01


def test_sampler_src_encoding_is_canonical():
    sampler = VerifiableSampler(0.5, seed="enc")
    for src in (0, 1, 0x0A010203, 2**32 - 1):
        assert sampler.samples_src(src) == sampler.samples(src.to_bytes(4, "big"))
    v6 = 2**32 + 7
    assert sampler.samples_src(v6) == sampler.samples(v6.to_bytes(16, "big"))


def test_sampler_rejects_out_of_range_rates():
    with pytest.raises(ConfigurationError):
        VerifiableSampler(-0.1, seed="x")
    with pytest.raises(ConfigurationError):
        VerifiableSampler(1.5, seed="x")


# -- SamplingEstimate ---------------------------------------------------------


@pytest.mark.parametrize("rate", RATES)
def test_estimate_scales_by_inverse_rate(rate):
    est = SamplingEstimate(observed=17, rate=rate)
    assert est.estimate == pytest.approx(17 / rate)


@pytest.mark.parametrize("rate", RATES)
def test_confidence_interval_brackets_the_estimate(rate):
    est = SamplingEstimate(observed=25, rate=rate)
    assert est.ci_low <= est.estimate <= est.ci_high
    # Normal lower bound, exact Poisson-quadratic upper bound.
    z = est.z
    assert est.ci_low == pytest.approx(max(0.0, 25 - z * math.sqrt(25)) / rate)
    assert est.ci_high == pytest.approx(
        (25 + z * z / 2 + z * math.sqrt(25 + z * z / 4)) / rate
    )


@pytest.mark.parametrize("rate", RATES)
def test_zero_observed_still_has_a_nonzero_upper_bound(rate):
    """'We audited and saw nothing' is worth ~z²/rate, not zero — the
    rule-of-three shape the runbook quotes."""
    est = SamplingEstimate(observed=0, rate=rate)
    assert est.estimate == 0.0
    assert est.ci_low == 0.0
    assert est.ci_high == pytest.approx(est.z * est.z / rate)


def test_estimate_validation():
    with pytest.raises(ValueError):
        SamplingEstimate(observed=-1, rate=0.1)
    with pytest.raises(ValueError):
        SamplingEstimate(observed=1, rate=0.0)
    with pytest.raises(ValueError):
        SamplingEstimate(observed=1, rate=1.1)


def test_estimate_payload_round_trips_the_fields():
    payload = SamplingEstimate(observed=4, rate=0.1).to_payload()
    assert payload["observed"] == 4
    assert payload["rate"] == 0.1
    assert payload["estimate"] == pytest.approx(40.0)


# -- rounds_to_detection ------------------------------------------------------


def test_full_sampling_detects_in_one_round():
    assert rounds_to_detection(1, 1.0) == 1
    assert rounds_to_detection(10_000, 1.0) == 1


def test_detection_bound_matches_closed_form():
    # One misdropped flow per round at rate 0.1: r rounds evade with
    # probability 0.9^r; 0.9^44 < 0.01 <= 0.9^43.
    assert rounds_to_detection(1, 0.1) == 44
    # Volumetric lying is caught almost immediately even at 1% sampling.
    assert rounds_to_detection(100, 0.1) == 1
    assert rounds_to_detection(100, 0.01) == 5


def test_detection_bound_is_monotone():
    assert rounds_to_detection(1, 0.01) >= rounds_to_detection(10, 0.01)
    assert rounds_to_detection(10, 0.01) >= rounds_to_detection(10, 0.1)


def test_detection_bound_validation():
    with pytest.raises(ValueError):
        rounds_to_detection(0, 0.1)
    with pytest.raises(ValueError):
        rounds_to_detection(1, 0.0)
    with pytest.raises(ValueError):
        rounds_to_detection(1, 0.1, confidence=1.0)


# -- rate 1.0 == the full enclave path ---------------------------------------


def test_rate_one_verdicts_are_byte_identical_to_enclave_only():
    """The free-verifiability point: with every drop decision re-verdicted,
    the tiered path returns exactly the enclave's verdict objects."""
    blocklist = [(1000 + i, 0x0A000000 + i) for i in range(64)]
    trace = [_packet(0x0A000000 + (i % 96)) for i in range(400)]

    baseline = EnclaveFilter(secret="s", sketch_seed="s", decision_secret="d")
    baseline.load_blocklist(blocklist)
    expected = []
    for start in range(0, len(trace), 64):
        expected.extend(baseline.process_burst(trace[start : start + 64]))

    sampler = VerifiableSampler(1.0, seed="identity")
    tier = FastDropTier(sampler)
    tier.install_rules(
        [MembershipRule(rule_id=rid, src_int=src) for rid, src in blocklist]
    )
    auditor = OffloadAuditor(sampler)
    engine = OffloadEngine(tier, auditor)
    inner = EnclaveFilter(secret="s", sketch_seed="s", decision_secret="d")
    inner.load_blocklist(blocklist)
    engine.bind(inner)
    got = []
    for start in range(0, len(trace), 64):
        got.extend(engine.process_burst(trace[start : start + 64]))

    assert got == expected
    report, _ = engine.close_round(1)
    # Every drop decision was diverted: nothing short-circuited the enclave.
    assert report.drops == 0
    assert report.sampled > 0
    assert report.disagreed == 0
    assert not report.shortfall
