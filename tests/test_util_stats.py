"""Statistics helpers: percentiles, boxplots, lognormal workloads."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    boxplot_summary,
    lognormal_bandwidths,
    mean,
    percentile,
    stdev,
)


def test_mean_and_stdev():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert stdev([2.0, 2.0, 2.0]) == pytest.approx(0.0)


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        stdev([])


def test_percentile_endpoints():
    data = [5.0, 1.0, 3.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 50) == 3.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_validates_q():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_boxplot_summary_ordering():
    data = list(range(101))
    s = boxplot_summary(float(x) for x in data)
    assert s.p5 <= s.p25 <= s.median <= s.p75 <= s.p95
    assert s.median == pytest.approx(50.0)
    assert s.as_row() == [s.p5, s.p25, s.median, s.p75, s.p95]


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentile_within_range(data):
    for q in (0, 5, 50, 95, 100):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)


def test_lognormal_bandwidths_sum_to_total():
    b = lognormal_bandwidths(500, 100e9, seed=3)
    assert len(b) == 500
    assert sum(b) == pytest.approx(100e9, rel=1e-9)
    assert all(x > 0 for x in b)


def test_lognormal_bandwidths_deterministic():
    assert lognormal_bandwidths(50, 1e9, seed=1) == lognormal_bandwidths(
        50, 1e9, seed=1
    )
    assert lognormal_bandwidths(50, 1e9, seed=1) != lognormal_bandwidths(
        50, 1e9, seed=2
    )


def test_lognormal_bandwidths_is_skewed():
    # A lognormal workload has a heavy tail: max >> median.
    b = sorted(lognormal_bandwidths(1000, 100e9, seed=7))
    assert b[-1] > 5 * b[len(b) // 2]


def test_lognormal_bandwidths_validation():
    with pytest.raises(ValueError):
        lognormal_bandwidths(0, 1e9)
    with pytest.raises(ValueError):
        lognormal_bandwidths(10, 0)
