"""Enclave packet logs (per-srcIP incoming, per-5-tuple outgoing)."""

from repro.sketch.logs import FiveTupleLog, PacketLogPair, SourceIPLog
from tests.conftest import make_packet


def test_source_ip_log_counts_by_source():
    log = SourceIPLog()
    for port in (1000, 2000, 3000):
        log.record(make_packet(src_ip="10.0.0.1", src_port=port))
    log.record(make_packet(src_ip="10.0.0.2"))
    assert log.estimate("10.0.0.1") >= 3
    assert log.estimate("10.0.0.2") >= 1
    assert log.total == 4


def test_five_tuple_log_distinguishes_flows():
    log = FiveTupleLog()
    a = make_packet(src_port=1111)
    b = make_packet(src_port=2222)
    log.record(a)
    log.record(a)
    log.record(b)
    assert log.estimate(a.five_tuple) >= 2
    assert log.estimate(b.five_tuple) >= 1


def test_log_pair_records_in_and_out_independently():
    pair = PacketLogPair()
    packet = make_packet()
    pair.record_incoming(packet)
    pair.record_incoming(packet)
    pair.record_forwarded(packet)
    assert pair.incoming.total == 2
    assert pair.outgoing.total == 1


def test_log_pair_memory_budget():
    # Two sketches ~1 MB each: the paper's "less than 1 MB per each sketch".
    pair = PacketLogPair()
    assert pair.memory_bytes() <= 2 * 1024 * 1024 * 1.1


def test_logs_with_same_seed_are_comparable():
    """The victim's local log must share the enclave log's hash family."""
    enclave_pair = PacketLogPair(family_seed="vif")
    victim_log = FiveTupleLog(family_seed="vif/out")
    packet = make_packet()
    enclave_pair.record_forwarded(packet)
    victim_log.record(packet)
    assert enclave_pair.outgoing.sketch.family.compatible_with(
        victim_log.sketch.family
    )
    assert enclave_pair.outgoing.sketch.bins() == victim_log.sketch.bins()
