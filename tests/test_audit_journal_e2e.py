"""Golden end-to-end: a seeded scheduler run with a scheduled bypass fault.

The whole observability chain at once: a victim session runs filtering
rounds against a network that turns malicious (drop-after-filtering) at a
scheduled round.  The journal must pin the bypass alert to exactly that
round, serialize byte-identically across two same-seed runs, embed a
bounded flight-recorder excerpt, and render byte-identically through
``repro audit``.
"""

from __future__ import annotations

import contextlib
import io

import pytest

from repro import obs
from repro.adversary import BypassConfig, MaliciousFilteringNetwork
from repro.cli import main
from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rounds import RoundScheduler
from repro.core.rules import FilterRule, FlowPattern, RPKIRegistry
from repro.core.session import SessionState, VIFSession
from repro.obs.audit import ALERT_BYPASS
from repro.obs.events import EventJournal
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.tee.attestation import IASService
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet

#: The round in which the filtering network starts dropping after the filter.
FAULT_ROUND = 3
RING_CAPACITY = 64


def _rules(n=4):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(
                src_prefix=f"10.{i}.0.0/16", dst_prefix=VICTIM_PREFIX
            ),
            p_allow=0.5,
            requested_by=VICTIM,
        )
        for i in range(1, n + 1)
    ]


def _traffic(round_number, flows_per_rule=10):
    packets = []
    for i in range(1, 5):
        for j in range(flows_per_rule):
            packets.append(
                make_packet(src_ip=f"10.{i}.0.{j + 1}", src_port=7000 + j)
            )
    return packets


class ScheduledBypass:
    """Honest delivery until :data:`FAULT_ROUND`, then drop-after-filtering."""

    def __init__(self, controller: IXPController) -> None:
        self.controller = controller
        # Probability 1.0 keeps the run reproducible across processes: the
        # per-packet drop coin hashes the process-global packet id, but at
        # p=1.0 every filter-approved packet is dropped unconditionally.
        self.cheat = MaliciousFilteringNetwork(
            controller, BypassConfig(drop_after_filtering=1.0, seed="e2e")
        )
        self.calls = 0

    def __call__(self, packets):
        self.calls += 1
        if self.calls >= FAULT_ROUND:
            return self.cheat.carry(packets)
        return self.controller.carry(packets)


def _run(journal_path: str):
    """One fully seeded session run; writes the journal and returns outcomes."""
    prev_registry = obs.set_registry(MetricsRegistry())
    prev_journal = obs.set_journal(EventJournal(enabled=True))
    prev_recorder = obs.set_flight_recorder(
        FlightRecorder(capacity=RING_CAPACITY, enabled=True)
    )
    try:
        ias = IASService()
        rpki = RPKIRegistry()
        rpki.authorize(VICTIM, VICTIM_PREFIX)
        controller = IXPController(ias)
        controller.launch_filters(1)
        session = VIFSession(VICTIM, rpki, ias, controller)
        session.attest_filters()
        session.submit_rules(_rules())
        scheduler = RoundScheduler(
            session=session,
            protocol=RuleDistributionProtocol(controller),
            deliver=ScheduledBypass(controller),
            round_duration_s=30.0,
        )
        outcomes = scheduler.run(_traffic, max_rounds=6)
        journal = obs.get_journal()
        journal.write_jsonl(journal_path)
        return outcomes, journal.events, session.state
    finally:
        obs.set_registry(prev_registry)
        obs.set_journal(prev_journal)
        obs.set_flight_recorder(prev_recorder)


def _render_audit(journal_path: str):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["audit", journal_path])
    return code, out.getvalue()


def test_bypass_alert_pins_the_faulted_round(tmp_path):
    path = str(tmp_path / "run.journal.jsonl")
    outcomes, events, state = _run(path)

    # The session aborts in exactly the faulted round.
    assert len(outcomes) == FAULT_ROUND
    assert outcomes[-1].aborted
    assert [a.kind for a in outcomes[-1].alerts] == [ALERT_BYPASS]
    assert state is SessionState.ABORTED
    # Earlier rounds were honest and scored clean.
    for outcome in outcomes[:-1]:
        assert outcome.audit.clean
        assert not outcome.divergence.suspicious

    bypass = [e for e in events if e.type == "bypass_evidence"]
    assert len(bypass) == 1
    assert bypass[0].round_id == FAULT_ROUND
    assert bypass[0].payload["suspected_attacks"] == ["drop-after-filtering"]
    alerts = [e for e in events if e.type == "alert"]
    assert [(e.round_id, e.payload["kind"]) for e in alerts] == [
        (FAULT_ROUND, ALERT_BYPASS)
    ]
    # The correlation keys line up: one round_start per round, one
    # sketch_audit per round, all tagged with the session.
    starts = [e for e in events if e.type == "round_start"]
    audits = [e for e in events if e.type == "sketch_audit"]
    assert [e.round_id for e in starts] == [1, 2, 3]
    assert [e.round_id for e in audits] == [1, 2, 3]
    assert all(e.session_id == VICTIM for e in starts)


def test_bypass_evidence_flight_dump_is_confined(tmp_path):
    path = str(tmp_path / "run.journal.jsonl")
    _, events, _ = _run(path)
    dump = next(e for e in events if e.type == "bypass_evidence").payload[
        "flight"
    ]
    assert 0 < len(dump) <= RING_CAPACITY
    assert all(row["round"] <= FAULT_ROUND for row in dump)
    # Entries are real adjudicated flows: rule ids from the victim's set.
    assert all(row["rule"] in (1, 2, 3, 4) for row in dump)
    assert all(row["verdict"] in ("allowed", "dropped") for row in dump)


def test_journal_and_audit_report_are_deterministic(tmp_path):
    path_a = str(tmp_path / "a.journal.jsonl")
    path_b = str(tmp_path / "b.journal.jsonl")
    _run(path_a)
    _run(path_b)
    bytes_a = open(path_a, "rb").read()
    assert bytes_a == open(path_b, "rb").read()
    assert len(bytes_a) > 0

    code_a, report_a = _render_audit(path_a)
    code_b, report_b = _render_audit(path_b)
    assert report_a == report_b
    assert code_a == code_b == 1  # the journal contains an alert
    assert f"round {FAULT_ROUND}:" in report_a
    assert "ALERT bypass-suspected" in report_a
    assert "BYPASS_EVIDENCE" in report_a
    assert "flight excerpt" in report_a


def test_harness_invariant_failure_journals_flight_dump(monkeypatch, tmp_path):
    """The other forensic trigger: a fail-closed invariant violation in the
    fault harness journals an invariant_failure event with a confined
    flight dump (forced here — the invariant is unreachable honestly)."""
    from repro.core.fleet import FleetConfig, FleetManager
    from repro.core.rules import Action, RuleSet
    from repro.faults.harness import FaultInjectionHarness
    from repro.faults.schedule import FaultSchedule
    from repro.util.units import GBPS

    prev_registry = obs.set_registry(MetricsRegistry())
    prev_journal = obs.set_journal(EventJournal(enabled=True))
    prev_recorder = obs.set_flight_recorder(
        FlightRecorder(capacity=RING_CAPACITY, enabled=True)
    )
    try:
        controller = IXPController(IASService())
        fleet = FleetManager(controller, config=FleetConfig(seed="e2e-inv"))
        rules = RuleSet()
        for i in range(4):
            rules.add(
                FilterRule(
                    rule_id=i + 1,
                    pattern=FlowPattern(dst_prefix=f"10.0.{i}.0/24"),
                    action=Action.DROP if i % 2 else Action.ALLOW,
                    requested_by=VICTIM,
                    rate_bps=0.6 * 2 * 10 * GBPS / 4,
                )
            )
        fleet.deploy(rules, enclaves_override=2)
        harness = FaultInjectionHarness(
            fleet, FaultSchedule(rounds=2, seed="e2e-inv")
        )
        monkeypatch.setattr(harness, "_audit", lambda carry: 2)
        result = harness.run()
        assert result.invariant_violations == 4  # 2 per round, forced

        failures = obs.get_journal().of_type("invariant_failure")
        assert [e.round_id for e in failures] == [0, 1]
        assert failures[0].payload["violations"] == 2
        dump = failures[0].payload["flight"]
        assert 0 < len(dump) <= RING_CAPACITY
        assert all(
            row["round"] is None or row["round"] <= 0 for row in dump
        )
        starts = obs.get_journal().of_type("round_start")
        assert [e.round_id for e in starts] == [0, 1]
    finally:
        obs.set_registry(prev_registry)
        obs.set_journal(prev_journal)
        obs.set_flight_recorder(prev_recorder)
