"""Bypass detection: victim and neighbor auditors (paper III-B)."""

from repro.core.bypass import NeighborAuditor, VictimAuditor, merge_enclave_logs
from repro.sketch.logs import PacketLogPair
from tests.conftest import make_packet


def test_victim_clean_when_streams_match():
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    for i in range(50):
        packet = make_packet(src_port=1000 + i)
        logs.record_forwarded(packet)
        auditor.observe(packet)
    evidence = auditor.audit(logs.outgoing.sketch)
    assert evidence.clean
    assert "no bypass" in evidence.describe()


def test_victim_detects_drop_after_filtering():
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    packets = [make_packet(src_port=1000 + i) for i in range(50)]
    for packet in packets:
        logs.record_forwarded(packet)
    for packet in packets[:40]:  # 10 vanish after the filter
        auditor.observe(packet)
    evidence = auditor.audit(logs.outgoing.sketch)
    assert evidence.suspected_attacks == ["drop-after-filtering"]
    assert evidence.comparison.total_missing == 10


def test_victim_detects_injection_after_filtering():
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    packets = [make_packet(src_port=1000 + i) for i in range(20)]
    for packet in packets:
        logs.record_forwarded(packet)
        auditor.observe(packet)
    for i in range(5):  # injected copies the enclave never saw
        auditor.observe(make_packet(src_port=7000 + i))
    evidence = auditor.audit(logs.outgoing.sketch)
    assert evidence.suspected_attacks == ["injection-after-filtering"]
    assert evidence.comparison.total_extra == 5


def test_victim_detects_both_simultaneously():
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    logs.record_forwarded(make_packet(src_port=1))
    auditor.observe(make_packet(src_port=2))
    evidence = auditor.audit(logs.outgoing.sketch)
    assert set(evidence.suspected_attacks) == {
        "drop-after-filtering",
        "injection-after-filtering",
    }


def test_victim_tolerance_absorbs_benign_loss():
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    packets = [make_packet(src_port=1000 + i) for i in range(50)]
    for packet in packets:
        logs.record_forwarded(packet)
    for packet in packets[:-1]:
        auditor.observe(packet)
    assert auditor.audit(logs.outgoing.sketch, tolerance=1).clean
    assert not auditor.audit(logs.outgoing.sketch, tolerance=0).clean


def test_neighbor_detects_drop_before_filtering():
    logs = PacketLogPair()
    neighbor = NeighborAuditor(64500)
    handed = [make_packet(src_ip=f"10.0.{i}.1", ingress_as=64500) for i in range(30)]
    for packet in handed:
        neighbor.observe(packet)
    for packet in handed[:20]:  # 10 dropped before reaching the filter
        logs.record_incoming(packet)
    evidence = neighbor.audit(logs.incoming.sketch)
    assert evidence.suspected_attacks == ["drop-before-filtering"]
    assert "AS64500" in evidence.describe()


def test_neighbor_clean_with_other_neighbors_traffic():
    """The enclave log aggregates all neighbors; extra enclave counts from
    other ASes must not look like misbehavior to this one."""
    logs = PacketLogPair()
    neighbor = NeighborAuditor(64500)
    mine = [make_packet(src_ip=f"10.0.{i}.1", ingress_as=64500) for i in range(10)]
    others = [make_packet(src_ip=f"172.16.{i}.1", ingress_as=64501) for i in range(10)]
    for packet in mine:
        neighbor.observe(packet)
        logs.record_incoming(packet)
    for packet in others:
        logs.record_incoming(packet)  # observed by the enclave, not by AS64500
    assert neighbor.audit(logs.incoming.sketch).clean


def test_merge_enclave_logs():
    a = PacketLogPair()
    b = PacketLogPair()
    auditor = VictimAuditor("victim")
    for i in range(10):
        packet = make_packet(src_port=5000 + i)
        (a if i % 2 else b).record_forwarded(packet)
        auditor.observe(packet)
    merged = merge_enclave_logs(
        [a.outgoing.sketch.copy(), b.outgoing.sketch.copy()]
    )
    assert auditor.audit(merged).clean
    assert merge_enclave_logs([]) is None


def test_injection_before_filtering_is_not_an_attack():
    """Paper III-A: injected packets before the filter just get filtered;
    the victim's audit of the outgoing log stays clean."""
    logs = PacketLogPair()
    auditor = VictimAuditor("victim")
    legit = [make_packet(src_port=1000 + i) for i in range(10)]
    injected = [make_packet(src_port=9000 + i) for i in range(5)]
    for packet in legit + injected:
        logs.record_incoming(packet)
        # Suppose the filter forwards everything (ALLOW rule):
        logs.record_forwarded(packet)
        auditor.observe(packet)
    assert auditor.audit(logs.outgoing.sketch).clean
