"""Appendix B fault localization via BGP-poisoning reroutes."""

import pytest

from repro.errors import RoutingError
from repro.interdomain.poisoning import (
    FaultLocalizationOutcome,
    InboundRouteTester,
    Verdict,
)
from repro.interdomain.topology import ASGraph, Tier


def multipath_graph() -> ASGraph:
    r"""Egress 1 reaches victim 6 via two disjoint transit chains.

        1 -> 2 -> 4 -> 6      (primary: shorter via peer 2-4? no: p2c chain)
        1 -> 3 -> 5 -> 6      (backup)
    """
    g = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        g.add_as(asn, "E", Tier.TIER2 if asn > 1 else Tier.TIER1)
    g.add_as(6, "E", Tier.STUB)
    g.add_p2c(1, 2)
    g.add_p2c(1, 3)
    g.add_p2c(2, 4)
    g.add_p2c(3, 5)
    g.add_p2c(4, 6)
    g.add_p2c(5, 6)
    return g


def test_no_loss_short_circuits():
    g = multipath_graph()
    tester = InboundRouteTester(g, victim=6, filtering_as=1)
    outcome = tester.localize()
    assert outcome.verdict is Verdict.NO_LOSS


def test_intermediate_dropper_located():
    g = multipath_graph()
    baseline = InboundRouteTester(g, 6, 1).current_path()
    dropper = baseline[1]  # first intermediate
    tester = InboundRouteTester(g, 6, 1, droppers={dropper})
    outcome = tester.localize()
    assert outcome.verdict is Verdict.INTERMEDIATE_AS
    assert dropper in outcome.suspect_ases
    assert outcome.probes_sent > 0


def test_filtering_network_blamed_when_all_reroutes_fail():
    g = multipath_graph()
    tester = InboundRouteTester(g, 6, 1, filtering_network_drops=True)
    outcome = tester.localize()
    # Every intermediate of the baseline is avoidable in this topology, and
    # the loss persists everywhere -> blame the filtering network.
    assert outcome.verdict is Verdict.FILTERING_NETWORK
    assert outcome.suspect_ases == []


def test_inconclusive_when_chokepoint_untestable():
    # Remove the backup chain: AS on the single path cannot be avoided.
    g = multipath_graph()
    g2 = g.without_as(3)
    g3 = g2.without_as(5)
    tester = InboundRouteTester(g3, 6, 1, filtering_network_drops=True)
    outcome = tester.localize()
    assert outcome.verdict is Verdict.INCONCLUSIVE


def test_direct_handoff_blames_filtering_network():
    g = ASGraph()
    g.add_as(1, "E", Tier.TIER2)
    g.add_as(2, "E", Tier.STUB)
    g.add_p2c(1, 2)
    tester = InboundRouteTester(g, 2, 1, filtering_network_drops=True)
    outcome = tester.localize()
    assert outcome.verdict is Verdict.FILTERING_NETWORK


def test_unreachable_victim_inconclusive():
    g = multipath_graph()
    g.add_as(99, "E", Tier.STUB)  # isolated
    tester = InboundRouteTester(g, 99, 1)
    assert tester.localize().verdict is Verdict.INCONCLUSIVE


def test_validation():
    g = multipath_graph()
    with pytest.raises(RoutingError):
        InboundRouteTester(g, victim=123, filtering_as=1)
    with pytest.raises(RoutingError):
        InboundRouteTester(g, victim=6, filtering_as=123)


def test_probe_semantics():
    g = multipath_graph()
    tester = InboundRouteTester(g, 6, 1, droppers={4})
    assert tester.probe((1, 2, 6)) is True  # dropper not on path
    assert tester.probe((1, 4, 6)) is False
    assert tester.probe(None) is False
    # Droppers at the endpoints don't count (only strict intermediates).
    assert tester.probe((4, 2, 6)) is True
