"""The enclave-hosted filter program: ECall surface, logs, EPC, misbehavior."""

import json

import pytest

from repro.core.enclave_filter import EnclaveBurstFilter, EnclaveFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.pipeline import FilterPipeline
from repro.errors import EnclaveError, SecureChannelError
from repro.tee.enclave import Platform
from repro.tee.secure_channel import ChannelEndpoint, SecureChannel
from repro.sketch.countmin import CountMinSketch
from tests.conftest import VICTIM_PREFIX, make_packet


def launch(**kw):
    platform = Platform("srv")
    program = EnclaveFilter(secret="enclave-secret", **kw)
    return platform.launch(program), program


def half_rule(rule_id=1):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80)),
        p_allow=0.5,
    )


def drop_rule(rule_id=1, prefix=VICTIM_PREFIX):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=prefix),
        action=Action.DROP,
    )


def test_install_and_process():
    enclave, _ = launch()
    assert enclave.ecall("install_rules", [drop_rule()]) == 1
    assert enclave.ecall("num_rules") == 1
    assert enclave.ecall("process_packet", make_packet()) is False
    assert enclave.ecall("process_packet", make_packet(dst_ip="198.51.100.1")) is True


def test_report_counters():
    enclave, _ = launch()
    enclave.ecall("install_rules", [drop_rule()])
    enclave.ecall("process_packet", make_packet())
    enclave.ecall("process_packet", make_packet(dst_ip="198.51.100.1"))
    report = enclave.ecall("report")
    assert report.packets_processed == 2
    assert report.packets_dropped == 1
    assert report.packets_allowed == 1
    assert report.unmatched_packets == 1


def test_logs_record_incoming_and_forwarded():
    enclave, program = launch()
    enclave.ecall("install_rules", [drop_rule()])
    dropped = make_packet()
    passed = make_packet(dst_ip="198.51.100.1")
    enclave.ecall("process_packet", dropped)
    enclave.ecall("process_packet", passed)
    assert program._logs.incoming.total == 2  # both logged on arrival
    assert program._logs.outgoing.total == 1  # only the forwarded one


def test_rule_byte_counters():
    enclave, _ = launch()
    enclave.ecall("install_rules", [drop_rule()])
    enclave.ecall("process_packet", make_packet(size=100))
    enclave.ecall("process_packet", make_packet(size=200))
    rates = enclave.ecall("export_rule_rates")
    assert rates == {1: 300}


def test_remove_rules_and_epc_accounting():
    enclave, program = launch()
    rules = [drop_rule(i, prefix=f"10.{i}.0.0/16") for i in range(1, 21)]
    enclave.ecall("install_rules", rules)
    used_full = enclave.epc.used
    assert enclave.ecall("remove_rules", [1, 2, 3]) == 3
    assert enclave.ecall("num_rules") == 17
    assert enclave.epc.used < used_full
    assert enclave.ecall("remove_rules", [999]) == 0


def test_epc_grows_with_rules():
    enclave, program = launch()
    base = enclave.epc.used
    enclave.ecall(
        "install_rules", [drop_rule(i, prefix=f"10.{i}.0.0/16") for i in range(1, 101)]
    )
    grown = enclave.epc.used
    assert grown == base + 100 * program._memory_model.bytes_per_rule


def test_scale_out_misbehavior_unassigned_rule():
    enclave, _ = launch(scale_out_mode=True)
    enclave.ecall("install_rules", [drop_rule(1), drop_rule(2, "198.51.100.0/24")])
    enclave.ecall("set_assigned_rules", [1])
    enclave.ecall("process_packet", make_packet())  # rule 1: fine
    assert enclave.ecall("misbehavior_report") == []
    enclave.ecall("process_packet", make_packet(dst_ip="198.51.100.1"))  # rule 2!
    events = enclave.ecall("misbehavior_report")
    assert len(events) == 1 and "rule 2" in events[0]


def test_scale_out_misbehavior_nonmatching_packet():
    enclave, _ = launch(scale_out_mode=True)
    enclave.ecall("install_rules", [drop_rule(1)])
    enclave.ecall("set_assigned_rules", [1])
    enclave.ecall("process_packet", make_packet(dst_ip="192.0.2.1"))
    events = enclave.ecall("misbehavior_report")
    assert len(events) == 1 and "non-matching" in events[0]


def test_no_misbehavior_checks_in_single_filter_mode():
    enclave, _ = launch(scale_out_mode=False)
    enclave.ecall("install_rules", [drop_rule(1)])
    enclave.ecall("process_packet", make_packet(dst_ip="192.0.2.1"))
    assert enclave.ecall("misbehavior_report") == []


def _open_channel(enclave):
    victim_ep = ChannelEndpoint.create("victim", "victim-seed")
    enclave_public = int.from_bytes(enclave.ecall("channel_public"), "big")
    enclave.ecall("open_victim_channel", victim_ep.public)
    return SecureChannel.establish(victim_ep, enclave_public, role="client")


def test_sealed_rule_install():
    enclave, _ = launch()
    channel = _open_channel(enclave)
    payload = json.dumps([drop_rule().to_dict()]).encode()
    assert enclave.ecall("install_rules_sealed", channel.seal(payload)) == 1
    assert enclave.ecall("num_rules") == 1


def test_sealed_rule_install_rejects_tampering():
    enclave, _ = launch()
    channel = _open_channel(enclave)
    payload = json.dumps([drop_rule().to_dict()]).encode()
    record = bytearray(channel.seal(payload))
    record[20] ^= 0xFF
    with pytest.raises(SecureChannelError):
        enclave.ecall("install_rules_sealed", bytes(record))
    assert enclave.ecall("num_rules") == 0


def test_sealed_log_export_roundtrip():
    enclave, program = launch()
    enclave.ecall("install_rules", [half_rule()])
    for i in range(30):
        enclave.ecall("process_packet", make_packet(src_port=1024 + i))
    channel = _open_channel(enclave)
    sealed = enclave.ecall("export_logs", channel.seal(b"outgoing"))
    sketch = CountMinSketch.deserialize(channel.open(sealed))
    assert sketch.bins() == program._logs.outgoing.sketch.bins()
    sealed_in = enclave.ecall("export_logs", channel.seal(b"incoming"))
    sketch_in = CountMinSketch.deserialize(channel.open(sealed_in))
    assert sketch_in.total == 30


def test_log_export_requires_channel():
    enclave, _ = launch()
    with pytest.raises(SecureChannelError):
        enclave.ecall("export_logs", b"whatever")


def test_log_export_rejects_unknown_query():
    enclave, _ = launch()
    channel = _open_channel(enclave)
    with pytest.raises(SecureChannelError, match="unknown log query"):
        enclave.ecall("export_logs", channel.seal(b"everything"))


def test_rule_update_tick_ecall():
    enclave, _ = launch()
    enclave.ecall("install_rules", [half_rule()])
    for i in range(5):
        enclave.ecall("process_packet", make_packet(src_port=2000 + i))
    assert enclave.ecall("rule_update_tick") == 5


def test_process_burst_matches_per_packet_semantics():
    """One burst ECall must leave the enclave in the identical state (report
    counters, byte counters, both sketches) as per-packet ECalls."""
    rules = [drop_rule(1), half_rule(2)]
    burst_enclave, burst_program = launch()
    point_enclave, point_program = launch()
    burst_enclave.ecall("install_rules", rules)
    point_enclave.ecall("install_rules", rules)
    packets = [
        make_packet(src_port=1024 + i, dst_ip="203.0.113.9" if i % 3 else "192.0.2.1")
        for i in range(40)
    ]

    verdicts = burst_enclave.ecall("process_burst", packets)
    expected = [point_enclave.ecall("process_packet", p) for p in packets]
    assert verdicts == expected

    assert burst_enclave.ecall("report").__dict__ == (
        point_enclave.ecall("report").__dict__
    )
    assert (
        burst_program._logs.incoming.sketch.bins()
        == point_program._logs.incoming.sketch.bins()
    )
    assert (
        burst_program._logs.outgoing.sketch.bins()
        == point_program._logs.outgoing.sketch.bins()
    )


def test_process_burst_is_one_ecall():
    enclave, _ = launch()
    enclave.ecall("install_rules", [drop_rule()])
    before = enclave.ecall_count
    enclave.ecall("process_burst", [make_packet(src_port=1024 + i) for i in range(32)])
    assert enclave.ecall_count == before + 1


def test_process_burst_empty_and_oversized():
    enclave, _ = launch()
    assert enclave.ecall("process_burst", []) == []
    too_many = [make_packet()] * (EnclaveFilter.MAX_BURST + 1)
    with pytest.raises(EnclaveError, match="staging buffer"):
        enclave.ecall("process_burst", too_many)


def test_process_burst_misbehavior_checks_still_fire():
    enclave, _ = launch(scale_out_mode=True)
    enclave.ecall("install_rules", [drop_rule(1), drop_rule(2, "198.51.100.0/24")])
    enclave.ecall("set_assigned_rules", [1])
    enclave.ecall(
        "process_burst",
        [
            make_packet(),  # rule 1: assigned, fine
            make_packet(dst_ip="198.51.100.1"),  # rule 2: not assigned
            make_packet(dst_ip="192.0.2.1"),  # matches nothing
        ],
    )
    events = enclave.ecall("misbehavior_report")
    assert len(events) == 2
    assert any("rule 2" in event for event in events)
    assert any("non-matching" in event for event in events)


def test_enclave_burst_filter_drives_pipeline_with_one_ecall_per_burst():
    """The full vertical slice: NIC -> rings -> one ECall per burst."""
    enclave, _ = launch()
    enclave.ecall("install_rules", [drop_rule()])
    pipeline = FilterPipeline(EnclaveBurstFilter(enclave), burst_size=32)
    ecalls_before = enclave.ecall_count
    packets = [
        make_packet(src_port=1024 + i)
        if i % 2 == 0
        else make_packet(src_port=1024 + i, dst_ip="198.51.100.1")
        for i in range(96)
    ]
    out = pipeline.process(packets)
    data_path_ecalls = enclave.ecall_count - ecalls_before
    assert data_path_ecalls == 3  # 96 packets / bursts of 32
    assert len(out) == 48  # odd i -> non-victim dst -> allowed
    assert pipeline.stats.allowed == 48
    assert pipeline.stats.dropped == 48


def test_shared_decision_secret_across_enclaves():
    """Two enclaves with the same decision secret agree on every flow."""
    p1 = Platform("a").launch(
        EnclaveFilter(secret="chan-a", decision_secret="fleet")
    )
    p2 = Platform("b").launch(
        EnclaveFilter(secret="chan-b", decision_secret="fleet")
    )
    p1.ecall("install_rules", [half_rule()])
    p2.ecall("install_rules", [half_rule()])
    for i in range(50):
        packet = make_packet(src_port=4000 + i)
        assert p1.ecall("process_packet", packet) == p2.ecall(
            "process_packet", packet
        )
