"""Smoke tests for the experiment generators behind the CLI.

The slow ones (gap, fig9, table1, fig11, bypass) are exercised by the
benchmark suite and the CLI tests; the fast generators are checked here for
output contracts so a refactor cannot silently break `repro.cli run all`.
"""

import pytest

from repro.experiments import figures


def test_fig3_contains_knee_and_epc_marker():
    out = figures.fig3_rule_scaling()
    assert "3000" in out and "10000" in out
    assert "yes" in out  # some row crossed the EPC line
    assert "Fig 3a/3b" in out


def test_fig8_lists_all_sizes_and_variants():
    out = figures.fig8_13_packet_size()
    for size in (64, 128, 256, 512, 1024, 1500):
        assert str(size) in out
    assert "native" in out and "zero-copy" in out


def test_latency_table_has_paper_column():
    out = figures.latency_table()
    assert "paper (us)" in out
    assert "107" in out


def test_fig14_rows_per_ratio():
    out = figures.fig14_hash_ratio()
    assert "1.000" in out and "0.010" in out
    assert "64 B" in out and "1500 B" in out


def test_table2_shape():
    out = figures.table2_batch_insert()
    assert "1000" in out and "paper (ms)" in out


def test_table3_five_regions():
    out = figures.table3_top_ixps()
    for region in ("Europe", "Africa", "Asia Pacific"):
        assert region in out


def test_attestation_hits_3_04():
    out = figures.attestation_timing()
    assert "3.04" in out


def test_cost_hits_100k():
    out = figures.cost_analysis()
    assert "100000" in out and "50" in out


def test_scaleout_validation_scaled_instance():
    out = figures.scaleout_validation(total_gbps=20, num_rules=1000)
    assert "feasible" in out
    assert "yes" in out and "no" in out


def test_fig11_parameterizable():
    out = figures.fig11_ixp_coverage(num_victims=10)
    assert "Top-1 IXPs" in out and "Top-5 IXPs" in out
    assert "Mirai" in out


def test_generators_are_deterministic():
    assert figures.fig3_rule_scaling() == figures.fig3_rule_scaling()
    assert figures.table3_top_ixps() == figures.table3_top_ixps()
