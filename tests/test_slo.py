"""The SLO engine: burn-rate math, debounce, and the serve-loop drill.

The acceptance scenario from ISSUE.md lives here: a seeded latency-spike
chaos schedule against a live serve loop produces **exactly one**
debounced ``slo_violation`` journal event, attributed to the same burst
the spike was injected at, and the whole journal is byte-identical across
same-seed runs.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.obs.audit import ALERT_SLO, AuditTimeline
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO_STAGE_LATENCY,
    SLOEngine,
    SLOObjective,
    default_serve_objectives,
)
from repro.serve import (
    LocalBackend,
    PktgenSource,
    ServeChaosDriver,
    ServeConfig,
    ServeService,
    ServeState,
)


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.set_registry(MetricsRegistry())
    journal = obs.set_journal(EventJournal(enabled=True))
    yield obs.get_journal()
    obs.set_registry(registry)
    obs.set_journal(journal)


# -- objective validation ------------------------------------------------------


def test_objective_validation():
    with pytest.raises(ValueError, match="target"):
        SLOObjective(name="x", target=1.0)
    with pytest.raises(ValueError, match="windows"):
        SLOObjective(name="x", target=0.9, short_window=8, long_window=4)
    with pytest.raises(ValueError, match="burn_factor"):
        SLOObjective(name="x", target=0.9, burn_factor=0.0)
    with pytest.raises(ValueError, match="debounce"):
        SLOObjective(name="x", target=0.9, debounce=0)
    assert SLOObjective(name="x", target=0.99).budget == pytest.approx(0.01)


def test_engine_rejects_duplicates_and_unknown_names():
    obj = SLOObjective(name="dup", target=0.9)
    with pytest.raises(ValueError, match="duplicate"):
        SLOEngine([obj, SLOObjective(name="dup", target=0.5)])
    engine = SLOEngine([obj])
    assert engine.has("dup") and not engine.has("other")
    with pytest.raises(ValueError, match="unknown objective"):
        engine.observe("other", burst=1, bad=True)


# -- burn-rate math ------------------------------------------------------------


def test_violation_needs_both_windows_burning():
    # Budget 50%, short window 1, long window 4, burn factor 1: a single
    # bad burst saturates the short window (burn 2.0), but three earlier
    # good bursts dilute the long window to burn 0.5 — no violation.  The
    # multi-window rule is exactly what keeps one blip from paging.
    engine = SLOEngine(
        [
            SLOObjective(
                name="latency", target=0.5,
                short_window=1, long_window=4, burn_factor=1.0,
            )
        ]
    )
    for burst in (1, 2, 3):
        engine.observe("latency", burst=burst, bad=False)
        assert engine.close_burst(burst) == []
    engine.observe("latency", burst=4, bad=True)
    assert engine.close_burst(4) == []  # short burns at 2.0, long at 0.5

    # A second consecutive bad burst drags the long window over too.
    engine.observe("latency", burst=5, bad=True)
    fired = engine.close_burst(5)
    assert [v.objective for v in fired] == ["latency"]
    v = fired[0]
    assert v.burst == 5
    assert v.burn_short == pytest.approx(2.0)  # 1/1 over budget 0.5
    assert v.burn_long == pytest.approx(1.0)  # 2 bad of 4 over budget 0.5
    assert (v.bad_short, v.len_short, v.bad_long, v.len_long) == (1, 1, 2, 4)


def test_burn_rate_gauges_and_burst_counters_published():
    engine = SLOEngine(
        [SLOObjective(name="latency", target=0.9, short_window=2,
                      long_window=4)]
    )
    engine.observe("latency", burst=1, bad=True)
    engine.close_burst(1)
    registry = obs.get_registry()
    short = registry.get("vif_slo_burn_rate", objective="latency",
                         window="short")
    long_ = registry.get("vif_slo_burn_rate", objective="latency",
                         window="long")
    assert short.value == pytest.approx(10.0)  # 1/1 over budget 0.1
    assert long_.value == pytest.approx(10.0)
    bad = registry.get("vif_slo_bursts_total", objective="latency",
                       outcome="bad")
    assert bad.value == 1


def test_debounce_requires_consecutive_violations():
    engine = SLOEngine(
        [
            SLOObjective(
                name="latency", target=0.5, short_window=4, long_window=4,
                burn_factor=1.0, debounce=2,
            )
        ]
    )
    engine.observe("latency", burst=1, bad=True)
    assert engine.close_burst(1) == []  # violating streak 1 of 2
    engine.observe("latency", burst=2, bad=False)
    assert engine.close_burst(2) != []  # bad sample still burns both windows


def test_fires_once_per_episode_then_rearms():
    engine = SLOEngine(
        [
            SLOObjective(
                name="latency", target=0.5, short_window=2, long_window=2,
                burn_factor=1.0,
            )
        ]
    )
    violations = []
    burst = 0
    # Episode one: a single bad burst, then enough good bursts to flush
    # it out of both windows (clean evaluations re-arm the objective).
    for bad in (True, False, False):
        burst += 1
        engine.observe("latency", burst=burst, bad=bad)
        violations += engine.close_burst(burst)
    assert [v.burst for v in violations] == [1]  # fired once, no flapping
    # Episode two: a fresh bad burst fires again.
    burst += 1
    engine.observe("latency", burst=burst, bad=True)
    violations += engine.close_burst(burst)
    assert [v.burst for v in violations] == [1, burst]
    assert len(engine.violations) == 2


def test_violation_journals_and_raises_timeline_alert():
    timeline = AuditTimeline(session_id="slo-test")
    engine = SLOEngine(
        [SLOObjective(name="latency", target=0.5, short_window=1,
                      long_window=1)],
        timeline=timeline,
        session_id="slo-test",
    )
    engine.observe("latency", burst=7, bad=True, worst=63.0)
    (violation,) = engine.close_burst(7)
    assert violation.worst == 63.0

    (event,) = obs.get_journal().of_type("slo_violation")
    assert event.round_id == 7
    assert event.payload["objective"] == "latency"
    assert event.payload["worst"] == 63.0
    assert event.payload["burn_short"] == 2.0

    (alert,) = timeline.alerts
    assert alert.kind == ALERT_SLO
    assert alert.observer == "slo:latency"
    counter = obs.get_registry().get(
        "vif_slo_violations_total", objective="latency"
    )
    assert counter.value == 1


def test_status_view_is_json_safe():
    import json

    engine = SLOEngine(default_serve_objectives())
    engine.observe(SLO_STAGE_LATENCY, burst=1, bad=True)
    engine.close_burst(1)
    status = engine.status()
    assert set(status) == {
        "stage-latency", "shed-ratio", "offload-audit", "conservation"
    }
    json.dumps(status)  # must not smuggle non-JSON types


# -- the serve-loop latency-spike drill ---------------------------------------

SPIKE_BURST = 5
TOTAL_BURSTS = 12


def _run_spike_drill() -> str:
    """One seeded serve session with a single LATENCY_SPIKE; returns the
    serialized journal (and leaves it live for assertions)."""
    filt = StatelessFilter(secret="vif-slo-drill")
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="203.0.100.0/24"),
        action=Action.DROP,
        requested_by="victim.example",
    )
    filt.install_rule(rule)
    source = PktgenSource(
        [rule], packets_per_rule=2, background_packets=1,
        total_bursts=TOTAL_BURSTS,
    )
    schedule = FaultSchedule(
        rounds=TOTAL_BURSTS,
        events=(
            FaultEvent(
                round_index=SPIKE_BURST,
                kind=FaultKind.LATENCY_SPIKE,
                target=1,  # the filter stage
                magnitude=60,
            ),
        ),
        seed="slo-drill",
    )
    slo = SLOEngine(default_serve_objectives(), session_id="slo-drill")
    config = ServeConfig(
        # queue_depth >= bursts: no shedding, so the only SLO-relevant
        # happening is the injected spike and the journal is replayable.
        queue_depth=TOTAL_BURSTS,
        heartbeat_deadline_s=5.0,
        watchdog_interval_s=0.05,
        shed_timeout_s=1.0,
        label="slo-drill",
    )

    async def scenario():
        driver = ServeChaosDriver(schedule)
        service = ServeService(
            source, LocalBackend(filt), config=config, chaos=driver, slo=slo,
        )
        driver.bind(service)
        await service.start()
        deadline = asyncio.get_running_loop().time() + 30.0
        while not service._source_exhausted:
            assert asyncio.get_running_loop().time() < deadline
            assert service.state is ServeState.SERVING
            await asyncio.sleep(0.005)
        return await service.drain()

    report = asyncio.run(scenario())
    assert report.unaccounted == 0 and report.shed == 0
    return obs.get_journal().to_jsonl()


def test_latency_spike_fires_exactly_one_violation_in_spike_round():
    _run_spike_drill()
    events = obs.get_journal().of_type("slo_violation")
    assert len(events) == 1
    (event,) = events
    assert event.round_id == SPIKE_BURST
    assert event.payload["objective"] == SLO_STAGE_LATENCY
    # worst is the spike magnitude quantized to its bucket bound — a
    # deterministic number, not a raw measurement.
    assert event.payload["worst"] == pytest.approx(63.0957344, rel=1e-6)
    assert event.payload["bad_short"] == 1


def test_same_seed_spike_drill_journal_is_byte_identical():
    first = _run_spike_drill()
    # Fresh observability stack, same seed: the bytes must match.
    obs.set_registry(MetricsRegistry())
    obs.set_journal(EventJournal(enabled=True))
    second = _run_spike_drill()
    assert first == second
    assert "slo_violation" in first
