"""The always-on serve runtime: lifecycle, backpressure, hot rules, watchdog.

Everything here runs against :class:`LocalBackend` (one in-process
StatelessFilter) — the chaos suite in ``test_serve_chaos.py`` covers the
fleet and sharded backends.  All timings are generous multiples of the
watchdog knobs so the tests stay deterministic on loaded CI hosts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    LocalBackend,
    PktgenSource,
    RuleDelta,
    ServeConfig,
    ServeService,
    ServeState,
    TraceReplaySource,
    serve_bounded,
)

SECRET = "vif-serve-test"


@pytest.fixture(autouse=True)
def fresh_obs():
    """Isolated metrics registry + enabled journal per test."""
    registry = obs.set_registry(MetricsRegistry())
    journal = obs.set_journal(EventJournal(enabled=True))
    yield obs.get_journal()
    obs.set_registry(registry)
    obs.set_journal(journal)


def _rule(rule_id: int, octet: int, action: Action = Action.DROP) -> FilterRule:
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=f"203.0.{octet}.0/24"),
        action=action,
        requested_by="victim.example",
    )


def _packet(dst_ip: str) -> Packet:
    return Packet(
        five_tuple=FiveTuple(
            src_ip="198.51.100.7",
            dst_ip=dst_ip,
            src_port=40000,
            dst_port=80,
            protocol=Protocol.TCP,
        )
    )


def _backend(rules=()):
    filter_ = StatelessFilter(secret=SECRET)
    backend = LocalBackend(filter_)
    backend.install_rules(list(rules))
    return backend


async def _run_to_exhaustion(service: ServeService, timeout: float = 30.0):
    """Let a finite-source service consume everything, then drain."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not service._source_exhausted:
        if service.state is ServeState.FAILED:
            break
        assert asyncio.get_running_loop().time() < deadline, "service stalled"
        await asyncio.sleep(0.005)
    return await service.drain()


# -- lifecycle ----------------------------------------------------------------


def test_lifecycle_start_serve_drain_lossless():
    rules = [_rule(1, 100), _rule(2, 101)]
    source = PktgenSource(rules, packets_per_rule=3, background_packets=2,
                          total_bursts=12)

    async def scenario():
        service = ServeService(source, _backend(rules))
        assert service.state is ServeState.STARTING
        await service.start()
        assert service.state is ServeState.SERVING
        return service, await _run_to_exhaustion(service)

    service, report = asyncio.run(scenario())
    assert service.state is ServeState.DRAINED
    assert report.state == "drained"
    # 12 bursts × (2 rules × 3 + 2 background) packets, fully accounted.
    assert report.ingested == 12 * 8
    assert report.unaccounted == 0
    assert report.shed == 0
    assert report.dropped == 12 * 6      # both rules DROP
    assert report.allowed == 12 * 2      # background on the default path
    assert service.counters()["audited"] == report.ingested
    assert obs.get_registry().check_invariants() == []


def test_drain_emits_final_state_journal(fresh_obs):
    source = PktgenSource([_rule(1, 100)], total_bursts=3)

    async def scenario():
        service = ServeService(source, _backend([_rule(1, 100)]))
        await service.start()
        return await _run_to_exhaustion(service)

    report = asyncio.run(scenario())
    states = [e.payload["state"] for e in fresh_obs.of_type("serve_state")]
    assert states == ["serving", "draining", "drained", "drained"]
    final = fresh_obs.of_type("serve_state")[-1]
    # The journal omits wall-clock drain_seconds (it would break same-seed
    # byte-identity); everything else matches the returned report exactly.
    expected = report.as_dict()
    expected.pop("drain_seconds")
    assert final.payload["report"] == expected


def test_config_validation():
    source = PktgenSource([_rule(1, 100)], total_bursts=1)
    with pytest.raises(ConfigurationError, match="queue_depth"):
        ServeService(source, _backend(), ServeConfig(queue_depth=0))
    with pytest.raises(ConfigurationError, match="max_stage_restarts"):
        ServeService(source, _backend(), ServeConfig(max_stage_restarts=-1))
    with pytest.raises(ConfigurationError, match="heartbeat_deadline_s"):
        ServeService(
            source,
            _backend(),
            ServeConfig(heartbeat_deadline_s=0.2, shed_timeout_s=0.25),
        )


def test_double_start_rejected():
    source = PktgenSource([_rule(1, 100)], total_bursts=2)

    async def scenario():
        service = ServeService(source, _backend([_rule(1, 100)]))
        await service.start()
        with pytest.raises(ConfigurationError, match="already started"):
            await service.start()
        await _run_to_exhaustion(service)

    asyncio.run(scenario())


# -- backpressure -------------------------------------------------------------


def test_backpressure_sheds_instead_of_buffering():
    """A slow filter behind a depth-1 queue: overflow is shed and counted."""
    rules = [_rule(1, 100)]
    source = PktgenSource(rules, packets_per_rule=4, background_packets=0,
                          total_bursts=30)

    async def slow_filter(stage, burst_index):
        if stage == "filter":
            await asyncio.sleep(0.03)

    async def scenario():
        service = ServeService(
            source,
            _backend(rules),
            ServeConfig(
                queue_depth=1,
                shed_timeout_s=0.01,
                heartbeat_deadline_s=2.0,
            ),
            chaos=slow_filter,
        )
        await service.start()
        return await _run_to_exhaustion(service)

    report = asyncio.run(scenario())
    assert report.state == "drained"
    assert report.shed > 0
    assert report.ingested == 30 * 4
    # Shed is *counted*, so the books still balance exactly.
    assert report.unaccounted == 0
    assert report.dropped + report.allowed == report.ingested - report.shed
    assert obs.get_registry().check_invariants() == []


# -- hot rule updates ---------------------------------------------------------


def test_hot_install_and_remove_mid_stream(fresh_obs):
    """Deltas applied between bursts flip live verdicts both ways."""
    trace = [_packet(f"203.0.50.{i % 250 + 1}") for i in range(400)]
    source = TraceReplaySource(trace, burst_size=20)
    backend = _backend()
    drop_rule = _rule(7, 50)
    probe = _packet("203.0.50.9")
    state = {"installed": False, "removed": False, "service": None}

    async def hook(stage, burst_index):
        service = state["service"]
        if stage != "ingest" or service is None:
            return
        if burst_index == 8 and not state["installed"]:
            state["installed"] = True
            # Wait until at least one burst was adjudicated under the old
            # rules, so allowed>0 is guaranteed, then install hot.
            while service.counters()["audited"] == 0:
                await asyncio.sleep(0.005)
            await service.install_rule(drop_rule)
            assert backend.process_burst([probe]) == [False]
        elif burst_index == 16 and not state["removed"]:
            state["removed"] = True
            await service.remove_rule(drop_rule.rule_id)
            assert backend.process_burst([probe]) == [True]

    async def scenario():
        service = ServeService(
            source, backend, ServeConfig(ingest_interval_s=0.002), chaos=hook
        )
        state["service"] = service
        await service.start()
        return await _run_to_exhaustion(service)

    report = asyncio.run(scenario())
    assert state["installed"] and state["removed"]
    assert report.rule_updates == 2
    assert report.allowed > 0 and report.dropped > 0
    assert report.unaccounted == 0
    actions = [e.payload["action"] for e in fresh_obs.of_type("rule_update")]
    assert actions == ["install", "remove"]


def test_delta_error_surfaces_and_service_keeps_serving():
    source = PktgenSource([_rule(1, 100)], total_bursts=40,
                          packets_per_rule=1, background_packets=0)

    async def scenario():
        service = ServeService(
            source,
            _backend([_rule(1, 100)]),
            ServeConfig(ingest_interval_s=0.005),
        )
        await service.start()
        with pytest.raises(ConfigurationError, match="unknown rule"):
            await service.remove_rule(999)
        assert service.state is ServeState.SERVING
        # The control stage survived the bad delta: a good one still works.
        await service.install_rule(_rule(2, 101))
        report = await _run_to_exhaustion(service)
        return service, report

    service, report = asyncio.run(scenario())
    assert report.state == "drained"
    assert report.rule_updates == 1  # the failed delta is not counted
    assert report.unaccounted == 0


def test_deltas_rejected_after_drain():
    source = PktgenSource([_rule(1, 100)], total_bursts=2)

    async def scenario():
        service = ServeService(source, _backend([_rule(1, 100)]))
        await service.start()
        await _run_to_exhaustion(service)
        with pytest.raises(ConfigurationError, match="drained"):
            await service.install_rule(_rule(2, 101))

    asyncio.run(scenario())


def test_rule_delta_validation():
    with pytest.raises(ConfigurationError, match="needs a rule"):
        RuleDelta(action="install")
    with pytest.raises(ConfigurationError, match="needs a rule_id"):
        RuleDelta(action="remove")
    with pytest.raises(ConfigurationError, match="unknown delta action"):
        RuleDelta(action="upsert", rule=_rule(1, 100))
    assert RuleDelta(action="remove", rule=_rule(3, 100)).target_rule_id == 3


# -- watchdog -----------------------------------------------------------------


def test_watchdog_restarts_hung_filter_stage_losslessly(fresh_obs):
    """One transient filter hang: restarted, burst resumed, zero loss."""
    rules = [_rule(1, 100)]
    source = PktgenSource(rules, packets_per_rule=4, background_packets=2,
                          total_bursts=15)
    fired = {"hang": False}

    async def hang_once(stage, burst_index):
        if stage == "filter" and burst_index >= 5 and not fired["hang"]:
            fired["hang"] = True
            await asyncio.sleep(30.0)  # cancelled by the watchdog restart

    async def scenario():
        service = ServeService(
            source,
            _backend(rules),
            ServeConfig(
                shed_timeout_s=0.05,
                heartbeat_deadline_s=0.2,
                watchdog_interval_s=0.02,
                restart_backoff_base_s=0.01,
            ),
            chaos=hang_once,
        )
        await service.start()
        report = await _run_to_exhaustion(service)
        return service, report

    service, report = asyncio.run(scenario())
    assert fired["hang"]
    assert report.state == "drained"
    assert service.stage_restarts["filter"] == 1
    assert report.stage_restarts == 1
    # The hung burst was resumed, not lost: everything is accounted and
    # nothing needed shedding.
    assert report.unaccounted == 0
    assert report.ingested == 15 * 6
    assert report.allowed + report.dropped == report.ingested - report.shed
    restarts = fresh_obs.of_type("stage_restart")
    assert any(
        e.payload["stage"] == "filter" and e.payload.get("hung") is True
        for e in restarts
    )


def test_restart_budget_exhaustion_fails_closed():
    """A permanently hung filter: budget burns out, service fails closed."""
    rules = [_rule(1, 100)]
    source = PktgenSource(rules, packets_per_rule=2, background_packets=0,
                          total_bursts=None)  # always-on

    async def hang_always(stage, burst_index):
        if stage == "filter":
            await asyncio.sleep(30.0)

    async def scenario():
        service = ServeService(
            source,
            _backend(rules),
            ServeConfig(
                shed_timeout_s=0.02,
                heartbeat_deadline_s=0.1,
                watchdog_interval_s=0.02,
                max_stage_restarts=1,
                restart_backoff_base_s=0.01,
            ),
            chaos=hang_always,
        )
        await service.start()
        deadline = asyncio.get_running_loop().time() + 30.0
        while service.state is not ServeState.FAILED:
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.01)
        report = await service.drain()
        return service, report

    service, report = asyncio.run(scenario())
    assert report.state == "failed"
    assert service.stage_restarts["filter"] == 1
    # Fail-closed shed everything still in flight: the books balance even
    # on the failure path.
    assert report.ingested > 0
    assert report.unaccounted == 0
    assert report.shed > 0
    assert obs.get_registry().check_invariants() == []

    async def late_delta():
        with pytest.raises(ConfigurationError, match="failed"):
            await service.install_rule(_rule(2, 101))

    asyncio.run(late_delta())


# -- serve_bounded helper -----------------------------------------------------


def test_serve_bounded_applies_deltas_and_drains():
    rules = [_rule(1, 100)]
    source = PktgenSource(rules, packets_per_rule=2, background_packets=2,
                          total_bursts=20)
    deltas = [
        RuleDelta(action="install", rule=_rule(5, 105)),
        RuleDelta(action="remove", rule_id=5),
    ]
    report = asyncio.run(
        serve_bounded(
            source,
            _backend(rules),
            config=ServeConfig(ingest_interval_s=0.005),
            deltas=deltas,
            delta_every_bursts=3,
        )
    )
    assert report.state == "drained"
    assert report.rule_updates == 2
    assert report.unaccounted == 0
    assert report.ingested == 20 * 4
