"""Property tests: registry conservation invariants under randomized load.

Seeded random pipeline and fleet runs must leave the books balanced —
``received == allowed + dropped + unrouted + rx_overflow + tx_overflow`` for
every pipeline, and the fleet carry equivalent — and the legacy ``stats``
attribute API must agree exactly with the registry series backing it (they
are the same memory; these tests pin that down).
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.controller import IXPController
from repro.core.fleet import FleetBurstFilter, FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.dataplane.nic import NIC
from repro.dataplane.pipeline import FilterPipeline, PipelineAccountingError
from repro.faults.harness import rule_traffic
from repro.tee.attestation import IASService
from repro.util.units import GBPS
from tests.conftest import make_packet


def _random_packets(rng: random.Random, n: int):
    return [
        make_packet(
            src_ip=f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
            dst_ip=f"203.0.{rng.randrange(114)}.{rng.randrange(1, 255)}",
            src_port=rng.randrange(1024, 65535),
            dst_port=rng.choice((80, 443, 53)),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_pipeline_conservation_invariant_random_runs(seed):
    """rx == allowed + dropped + unrouted + overflow drops, every seed."""
    rng = random.Random(seed)
    pipeline = FilterPipeline(
        lambda p: rng.random() < 0.6,
        nic_in=NIC("prop-in", rx_queue_size=rng.choice((64, 512, 4096))),
        burst_size=rng.choice((8, 32, 64)),
        ring_capacity=rng.choice((16, 256, 4096)),
    )
    for _ in range(rng.randrange(1, 4)):
        pipeline.process(_random_packets(rng, rng.randrange(1, 2000)))

    s = pipeline.stats
    assert s.received == (
        s.allowed
        + s.dropped
        + s.unrouted
        + s.rx_overflow_drops
        + s.tx_overflow_drops
    )
    # The same predicate, through the registry.
    violations = obs.get_registry().check_invariants(
        [f"pipeline_conservation/{s.pipeline_label}"]
    )
    assert violations == []


@pytest.mark.parametrize("seed", [3, 11])
def test_pipeline_stats_agree_with_registry_series(seed):
    """The legacy attribute API and the registry read the same memory."""
    rng = random.Random(seed)
    pipeline = FilterPipeline(lambda p: rng.random() < 0.5)
    pipeline.process(_random_packets(rng, 500))

    s = pipeline.stats
    registry = obs.get_registry()
    for field in s.FIELDS:
        series = registry.get(
            f"vif_pipeline_{field}_total", pipeline=s.pipeline_label
        )
        assert series is not None, field
        assert series.value == getattr(s, field), field
    # NIC books agree too: everything that came off the wire was either
    # polled into the pipeline or dropped on a full RX queue.
    nic = pipeline.nic_in
    assert nic.stats.rx_packets == s.received + nic.stats.rx_dropped
    assert registry.total("vif_pipeline_received_total") >= s.received


def test_cooked_books_trip_the_registry_invariant():
    """Assigning through the stats facade must be visible to the invariant
    (the facade stores into the registry counter, not a shadow int)."""
    pipeline = FilterPipeline(lambda p: True)
    pipeline.process(_random_packets(random.Random(5), 50))
    pipeline.stats.received += 10  # cook the books

    name = f"pipeline_conservation/{pipeline.stats.pipeline_label}"
    registry = obs.get_registry()
    try:
        violations = registry.check_invariants([name])
        assert len(violations) == 1
        assert "lost packets untracked" in violations[0]
        with pytest.raises(PipelineAccountingError):
            pipeline.check_conservation()
    finally:
        # Leave no deliberately-violated invariant behind in the shared
        # registry (later whole-registry sweeps must stay meaningful).
        registry.unregister_invariant(name)


def _fleet(seed: str, fleet_size: int = 3, rules: int = 6):
    controller = IXPController(IASService())
    fleet = FleetManager(controller, config=FleetConfig(seed=seed))
    rule_set = RuleSet()
    rate = 0.6 * fleet_size * 10 * GBPS / rules
    for i in range(rules):
        rule_set.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"10.0.{i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by="victim.example",
                rate_bps=rate,
            )
        )
    fleet.deploy(rule_set, enclaves_override=fleet_size)
    return fleet, rule_set


@pytest.mark.parametrize("seed", ["a", "b", "c"])
def test_fleet_carry_conservation_across_failover(seed):
    """offered == allowed + dropped + unrouted + shed + failclosed, even
    with a mid-run crash and recovery."""
    fleet, rules = _fleet(seed)
    traffic = rule_traffic(rules, seed=f"prop/{seed}")
    rng = random.Random(seed)
    for r in range(4):
        if rng.random() < 0.5:
            fleet.inject_crash(rng.randrange(3))
        fleet.run_round(traffic(r))

    registry = obs.get_registry()
    name = f"fleet_carry_conservation/{fleet.counters.fleet_label}"
    assert registry.check_invariants([name]) == []
    offered = registry.get(
        "vif_fleet_carry_offered_total", fleet=fleet.counters.fleet_label
    )
    assert offered is not None and offered.value > 0
    # The security counter stayed pinned at zero.
    assert fleet.counters.unfiltered_packets == 0


def test_fleet_counters_agree_with_registry_series():
    fleet, rules = _fleet("agree")
    traffic = rule_traffic(rules, seed="prop/agree")
    fleet.inject_crash(1)
    fleet.run_round(traffic(0))

    registry = obs.get_registry()
    counters = fleet.counters
    for field in counters.FIELDS:
        series = registry.get(
            f"vif_fleet_{field}_total", fleet=counters.fleet_label
        )
        assert series is not None, field
        assert series.value == getattr(counters, field), field
    assert counters.failovers >= 1  # the crash was actually handled


def test_pipeline_over_fleet_books_balance_together():
    """A FilterPipeline fed by a FleetBurstFilter keeps both ledgers clean
    (checked via the registry invariants this test created — other tests'
    deliberately-cooked pipelines may share the process registry)."""
    fleet, rules = _fleet("stacked")
    traffic = rule_traffic(rules, seed="prop/stacked")
    pipeline = FilterPipeline(FleetBurstFilter(fleet))
    for r in range(3):
        pipeline.process(list(traffic(r)))

    registry = obs.get_registry()
    names = [
        f"pipeline_conservation/{pipeline.stats.pipeline_label}",
        f"fleet_carry_conservation/{fleet.counters.fleet_label}",
    ]
    assert registry.check_invariants(names) == []
