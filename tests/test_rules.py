"""Rules: patterns, rule sets, RPKI validation, wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import (
    Action,
    FilterRule,
    FlowPattern,
    RPKIRegistry,
    RuleSet,
)
from repro.dataplane.packet import FiveTuple, Protocol
from repro.errors import RuleError, RuleValidationError
from tests.conftest import VICTIM, VICTIM_PREFIX


def flow(**kw) -> FiveTuple:
    base = dict(
        src_ip="10.1.2.3",
        dst_ip="203.0.113.10",
        src_port=4000,
        dst_port=80,
        protocol=Protocol.TCP,
    )
    base.update(kw)
    return FiveTuple(**base)


# -- FlowPattern -----------------------------------------------------------


def test_wildcard_pattern_matches_everything():
    assert FlowPattern().matches(flow())
    assert FlowPattern().matches(flow(protocol=Protocol.UDP, dst_port=53))


def test_prefix_matching():
    pattern = FlowPattern(src_prefix="10.1.0.0/16")
    assert pattern.matches(flow(src_ip="10.1.255.255"))
    assert not pattern.matches(flow(src_ip="10.2.0.1"))


def test_port_range_matching():
    pattern = FlowPattern(dst_ports=(80, 443))
    assert pattern.matches(flow(dst_port=80))
    assert pattern.matches(flow(dst_port=443))
    assert not pattern.matches(flow(dst_port=444))


def test_protocol_matching():
    pattern = FlowPattern(protocol=Protocol.UDP)
    assert not pattern.matches(flow())
    assert pattern.matches(flow(protocol=Protocol.UDP))


def test_exact_pattern_matches_only_its_flow():
    f = flow()
    pattern = FlowPattern.exact(f)
    assert pattern.is_exact_match
    assert pattern.matches(f)
    assert not pattern.matches(flow(src_port=4001))
    assert not pattern.matches(flow(src_ip="10.1.2.4"))


def test_specificity_ordering():
    exact = FlowPattern.exact(flow())
    coarse = FlowPattern(dst_prefix="203.0.113.0/24")
    wildcard = FlowPattern()
    assert exact.specificity > coarse.specificity > wildcard.specificity


def test_pattern_validation():
    with pytest.raises(RuleError):
        FlowPattern(src_prefix="not-a-prefix")
    with pytest.raises(RuleError):
        FlowPattern(dst_ports=(10, 5))
    with pytest.raises(RuleError):
        FlowPattern(src_ports=(-1, 5))


def test_pattern_str():
    text = str(FlowPattern(dst_prefix="203.0.113.0/24", dst_ports=(80, 80),
                           protocol=Protocol.TCP))
    assert "TCP" in text and "203.0.113.0/24" in text and "80-80" in text


# -- FilterRule ---------------------------------------------------------------


def test_rule_needs_exactly_one_of_action_or_p_allow():
    pattern = FlowPattern()
    with pytest.raises(RuleError):
        FilterRule(rule_id=1, pattern=pattern)
    with pytest.raises(RuleError):
        FilterRule(rule_id=1, pattern=pattern, action=Action.DROP, p_allow=0.5)


def test_rule_p_allow_bounds():
    with pytest.raises(RuleError):
        FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=1.5)
    with pytest.raises(RuleError):
        FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=-0.1)


def test_rule_p_drop():
    assert FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.DROP).p_drop == 1.0
    assert FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.ALLOW).p_drop == 0.0
    assert FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=0.3).p_drop == pytest.approx(0.7)


def test_rule_with_rate():
    rule = FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=0.5)
    updated = rule.with_rate(1e9)
    assert updated.rate_bps == 1e9
    assert updated.rule_id == rule.rule_id and updated.p_allow == rule.p_allow


def test_rule_describe():
    rule = FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=0.5)
    assert "DROP 50%" in rule.describe()
    det = FilterRule(rule_id=2, pattern=FlowPattern(), action=Action.ALLOW)
    assert "ALLOW" in det.describe()


def test_rule_wire_roundtrip():
    rule = FilterRule(
        rule_id=9,
        pattern=FlowPattern(
            src_prefix="10.0.0.0/8",
            dst_prefix=VICTIM_PREFIX,
            dst_ports=(80, 443),
            protocol=Protocol.TCP,
        ),
        p_allow=0.25,
        rate_bps=5e8,
        requested_by=VICTIM,
    )
    restored = FilterRule.from_dict(rule.to_dict())
    assert restored == rule


def test_rule_wire_roundtrip_deterministic_rule():
    rule = FilterRule(
        rule_id=3, pattern=FlowPattern(), action=Action.DROP, requested_by=VICTIM
    )
    assert FilterRule.from_dict(rule.to_dict()) == rule


# -- RuleSet ----------------------------------------------------------------------


def test_ruleset_most_specific_wins():
    rules = RuleSet(
        [
            FilterRule(
                rule_id=1,
                pattern=FlowPattern(dst_prefix="203.0.113.0/24"),
                action=Action.ALLOW,
            ),
            FilterRule(
                rule_id=2,
                pattern=FlowPattern.exact(flow()),
                action=Action.DROP,
            ),
        ]
    )
    assert rules.match(flow()).rule_id == 2
    assert rules.match(flow(src_port=9999)).rule_id == 1


def test_ruleset_tie_breaks_on_lowest_id():
    pattern = FlowPattern(dst_prefix="203.0.113.0/24")
    rules = RuleSet(
        [
            FilterRule(rule_id=5, pattern=pattern, action=Action.ALLOW),
            FilterRule(rule_id=3, pattern=pattern, action=Action.DROP),
        ]
    )
    assert rules.match(flow()).rule_id == 3


def test_ruleset_duplicate_id_rejected():
    rules = RuleSet()
    rules.add(FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.DROP))
    with pytest.raises(RuleError):
        rules.add(FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.ALLOW))


def test_ruleset_remove_and_get():
    rule = FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.DROP)
    rules = RuleSet([rule])
    assert rules.get(1) == rule
    assert rules.remove(1) == rule
    with pytest.raises(RuleError):
        rules.get(1)
    with pytest.raises(RuleError):
        rules.remove(1)


def test_ruleset_iteration_in_id_order():
    rules = RuleSet(
        FilterRule(rule_id=i, pattern=FlowPattern(), action=Action.DROP)
        for i in (5, 1, 3)
    )
    assert [r.rule_id for r in rules] == [1, 3, 5]
    assert len(rules) == 3
    assert 3 in rules and 2 not in rules


def test_ruleset_subset_and_total_rate():
    rules = RuleSet(
        FilterRule(
            rule_id=i, pattern=FlowPattern(), action=Action.DROP, rate_bps=i * 1e6
        )
        for i in (1, 2, 3)
    )
    subset = rules.subset([1, 3])
    assert [r.rule_id for r in subset] == [1, 3]
    assert rules.total_rate_bps() == pytest.approx(6e6)


def test_ruleset_no_match_returns_none():
    rules = RuleSet(
        [FilterRule(rule_id=1, pattern=FlowPattern(dst_prefix="198.51.100.0/24"),
                    action=Action.DROP)]
    )
    assert rules.match(flow()) is None


# -- RPKI ---------------------------------------------------------------------------


def test_rpki_validates_authorized_rule():
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="203.0.113.128/25"),
        action=Action.DROP,
        requested_by=VICTIM,
    )
    rpki.validate_rule(rule)  # no raise


def test_rpki_rejects_foreign_destination():
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="198.51.100.0/24"),
        action=Action.DROP,
        requested_by=VICTIM,
    )
    with pytest.raises(RuleValidationError):
        rpki.validate_rule(rule)


def test_rpki_rejects_anonymous_rule():
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
        action=Action.DROP,
    )
    with pytest.raises(RuleValidationError):
        rpki.validate_rule(rule)


def test_rpki_rejects_wider_than_authorized():
    # A /24 holder cannot filter the covering /16.
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix="203.0.0.0/16"),
        action=Action.DROP,
        requested_by=VICTIM,
    )
    with pytest.raises(RuleValidationError):
        rpki.validate_rule(rule)


def test_rpki_validate_rules_stops_at_first_violation():
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    good = FilterRule(
        rule_id=1,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX),
        action=Action.DROP,
        requested_by=VICTIM,
    )
    bad = FilterRule(
        rule_id=2,
        pattern=FlowPattern(dst_prefix="198.51.100.0/24"),
        action=Action.DROP,
        requested_by=VICTIM,
    )
    with pytest.raises(RuleValidationError):
        rpki.validate_rules([good, bad])


# -- property: RuleSet.match agrees with brute force ---------------------------------

_ips = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda v: ".".join(str((v >> s) & 0xFF) for s in (24, 16, 8, 0))
)


@settings(max_examples=50, deadline=None)
@given(
    src=_ips,
    dst=_ips,
    sp=st.integers(min_value=0, max_value=65535),
    dp=st.integers(min_value=0, max_value=65535),
)
def test_match_is_most_specific(src, dst, sp, dp):
    f = FiveTuple(src_ip=src, dst_ip=dst, src_port=sp, dst_port=dp,
                  protocol=Protocol.TCP)
    rules = RuleSet(
        [
            FilterRule(rule_id=1, pattern=FlowPattern(), action=Action.ALLOW),
            FilterRule(
                rule_id=2,
                pattern=FlowPattern(dst_prefix=f"{dst}/24"),
                action=Action.DROP,
            ),
            FilterRule(
                rule_id=3,
                pattern=FlowPattern(dst_prefix=f"{dst}/32",
                                    dst_ports=(dp, dp)),
                action=Action.ALLOW,
            ),
        ]
    )
    matched = rules.match(f)
    candidates = [r for r in rules if r.pattern.matches(f)]
    best = max(candidates, key=lambda r: (r.pattern.specificity, -r.rule_id))
    assert matched.rule_id == best.rule_id
