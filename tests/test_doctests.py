"""Run the doctests embedded in module docstrings/APIs."""

import doctest

import pytest

import repro.util.units

MODULES_WITH_DOCTESTS = [repro.util.units]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
