"""The stateless filter: auditability properties and the three
connection-preserving modes (paper III-A, Appendix A/F)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from tests.conftest import VICTIM_PREFIX, make_packet


def build_filter(rules, mode=ConnectionPreservingMode.HYBRID, secret="s"):
    f = StatelessFilter(secret=secret, mode=mode)
    f.install_rules(rules)
    return f


def half_rule(rule_id=1):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80)),
        p_allow=0.5,
    )


def drop_rule(rule_id=1):
    return FilterRule(
        rule_id=rule_id,
        pattern=FlowPattern(dst_prefix=VICTIM_PREFIX, dst_ports=(80, 80)),
        action=Action.DROP,
    )


def packets_for_flows(n, repeat=1):
    out = []
    for i in range(n):
        for _ in range(repeat):
            out.append(make_packet(src_port=1024 + i))
    return out


# -- deterministic rules ---------------------------------------------------------


def test_deterministic_drop():
    f = build_filter([drop_rule()])
    assert not f.decide(make_packet()).allowed
    assert f.decide(make_packet(dst_port=443)).allowed  # no rule -> default


def test_default_action_configurable():
    f = StatelessFilter(secret="s", default_action=Action.DROP)
    assert not f.decide(make_packet()).allowed


def test_decision_provenance():
    f = build_filter([drop_rule()])
    decision = f.decide(make_packet())
    assert decision.rule.rule_id == 1
    assert decision.action is Action.DROP
    assert not decision.used_hash


def test_empty_secret_rejected():
    with pytest.raises(ConfigurationError):
        StatelessFilter(secret="")


# -- the core auditability property ------------------------------------------------


def test_statelessness_order_independence():
    """Equation 2: f(p) must not depend on the surrounding packet stream."""
    packets = packets_for_flows(200)
    f1 = build_filter([half_rule()])
    decisions_in_order = {
        p.five_tuple: f1.decide(p).allowed for p in packets
    }
    f2 = build_filter([half_rule()])
    shuffled = packets[:]
    random.Random(99).shuffle(shuffled)
    decisions_shuffled = {
        p.five_tuple: f2.decide(p).allowed for p in shuffled
    }
    assert decisions_in_order == decisions_shuffled


def test_statelessness_injection_independence():
    """Injecting arbitrary packets must not change other flows' verdicts."""
    packets = packets_for_flows(100)
    f1 = build_filter([half_rule()])
    baseline = {p.five_tuple: f1.decide(p).allowed for p in packets}

    f2 = build_filter([half_rule()])
    noise = [make_packet(src_ip=f"172.16.{i}.1", src_port=5000 + i)
             for i in range(50)]
    for p in noise:
        f2.decide(p)
    after_injection = {p.five_tuple: f2.decide(p).allowed for p in packets}
    assert baseline == after_injection


def test_repeated_evaluation_is_stable():
    f = build_filter([half_rule()])
    packet = make_packet()
    first = f.decide(packet).allowed
    for _ in range(20):
        assert f.decide(packet).allowed == first


# -- probabilistic execution ----------------------------------------------------------


@pytest.mark.parametrize("mode", list(ConnectionPreservingMode))
def test_connection_preserving_in_every_mode(mode):
    """All packets of one flow share the verdict, in every mode."""
    f = build_filter([half_rule()], mode=mode)
    for i in range(50):
        verdicts = {
            f.decide(make_packet(src_port=2000 + i)).allowed for _ in range(5)
        }
        assert len(verdicts) == 1


@pytest.mark.parametrize("mode", list(ConnectionPreservingMode))
def test_drop_fraction_near_requested(mode):
    f = build_filter([half_rule()], mode=mode)
    packets = packets_for_flows(600)
    allowed = sum(1 for p in packets if f.decide(p).allowed)
    assert 0.42 < allowed / len(packets) < 0.58


def test_modes_agree_on_verdicts():
    """The exact-match table is a cache of the hash verdict, so all three
    modes produce identical decisions given the same secret."""
    packets = packets_for_flows(150)
    verdicts = []
    for mode in ConnectionPreservingMode:
        f = build_filter([half_rule()], mode=mode)
        verdicts.append([f.decide(p).allowed for p in packets])
    assert verdicts[0] == verdicts[1] == verdicts[2]


def test_different_secrets_differ():
    packets = packets_for_flows(100)
    fa = build_filter([half_rule()], secret="alpha")
    fb = build_filter([half_rule()], secret="beta")
    va = [fa.decide(p).allowed for p in packets]
    vb = [fb.decide(p).allowed for p in packets]
    assert va != vb


def test_p_allow_extremes():
    f0 = build_filter(
        [FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=0.0)]
    )
    f1 = build_filter(
        [FilterRule(rule_id=1, pattern=FlowPattern(), p_allow=1.0)]
    )
    for i in range(50):
        packet = make_packet(src_port=3000 + i)
        assert not f0.decide(packet).allowed
        assert f1.decide(packet).allowed


# -- mode mechanics -------------------------------------------------------------------


def test_hash_mode_always_hashes():
    f = build_filter([half_rule()], mode=ConnectionPreservingMode.HASH_BASED)
    packet = make_packet()
    for _ in range(5):
        f.decide(packet)
    assert f.hash_evaluations == 5
    assert len(f.flow_table) == 0


def test_exact_match_mode_installs_immediately():
    f = build_filter([half_rule()], mode=ConnectionPreservingMode.EXACT_MATCH)
    packet = make_packet()
    first = f.decide(packet)
    assert first.used_hash
    second = f.decide(packet)
    assert not second.used_hash  # table hit
    assert f.hash_evaluations == 1
    assert f.table_hits == 1
    assert len(f.flow_table) == 1


def test_hybrid_mode_batches_at_update_tick():
    f = build_filter([half_rule()], mode=ConnectionPreservingMode.HYBRID)
    packets = packets_for_flows(10)
    for p in packets:
        f.decide(p)
        f.decide(p)  # second packet of each flow still hash-decided
    assert len(f.flow_table) == 0
    assert f.flow_table.pending_count > 0
    installed = f.rule_update_tick()
    assert installed == 10
    before = f.hash_evaluations
    for p in packets:
        f.decide(p)
    assert f.hash_evaluations == before  # all table hits now


def test_update_tick_noop_in_hash_mode():
    f = build_filter([half_rule()], mode=ConnectionPreservingMode.HASH_BASED)
    f.decide(make_packet())
    assert f.rule_update_tick() == 0


# -- property: verdict is a pure function of (flow, rules, secret) ----------------------


@settings(max_examples=50, deadline=None)
@given(
    port=st.integers(min_value=1, max_value=65535),
    octet=st.integers(min_value=1, max_value=254),
    p_allow=st.floats(min_value=0.0, max_value=1.0),
)
def test_verdict_pure_function(port, octet, p_allow):
    rule = FilterRule(
        rule_id=1, pattern=FlowPattern(dst_prefix=VICTIM_PREFIX), p_allow=p_allow
    )
    flow = FiveTuple(
        src_ip=f"10.0.0.{octet}",
        dst_ip="203.0.113.7",
        src_port=port,
        dst_port=80,
        protocol=Protocol.TCP,
    )
    results = set()
    for mode in ConnectionPreservingMode:
        f = build_filter([rule], mode=mode, secret="fixed")
        results.add(f.decide_flow(flow).allowed)
    assert len(results) == 1
