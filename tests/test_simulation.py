"""The Fig 11 coverage simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.interdomain.attack_sources import dns_resolver_population
from repro.interdomain.ixp import IXP
from repro.interdomain.simulation import (
    choose_victims,
    coverage_rows,
    ixp_coverage,
)
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet

SMALL = SyntheticInternetConfig(
    tier1_per_region=1, tier2_per_region=6, stubs_per_region=40, seed=6
)


@pytest.fixture(scope="module")
def world():
    graph, ixps = generate_internet(SMALL)
    victims = choose_victims(graph, 20)
    sources = dns_resolver_population(graph, total_resolvers=3000)
    return graph, ixps, victims, sources


def test_coverage_monotone_in_top_n(world):
    graph, ixps, victims, sources = world
    result = ixp_coverage(graph, ixps, victims, sources)
    medians = [result.median(level) for level in (1, 2, 3, 4, 5)]
    for lo, hi in zip(medians, medians[1:]):
        assert hi >= lo - 1e-12


def test_coverage_ratios_are_probabilities(world):
    graph, ixps, victims, sources = world
    result = ixp_coverage(graph, ixps, victims, sources)
    for ratios in result.ratios_by_level.values():
        assert len(ratios) == len(victims)
        assert all(0.0 <= r <= 1.0 for r in ratios)


def test_no_ixps_means_no_coverage(world):
    graph, _, victims, sources = world
    empty_ixps = [
        IXP(ixp_id=f"e{i}", name="E", region=r, members=set())
        for i, r in enumerate(
            ("Europe", "North America", "South America", "Asia Pacific", "Africa")
        )
    ]
    result = ixp_coverage(graph, empty_ixps, victims, sources, top_levels=(1,))
    assert all(r == 0.0 for r in result.ratios_by_level[1])


def test_universal_ixp_means_full_coverage(world):
    graph, _, victims, sources = world
    god_ixp = [
        IXP(ixp_id="all", name="ALL", region="Europe", members=set(graph.ases()))
    ]
    result = ixp_coverage(graph, god_ixp, victims, sources, top_levels=(1,))
    # Every multi-hop path is covered; only sources adjacent to... no:
    # every hop is member-member, so any source with a path of >= 1 hop
    # counts.  Sources == victims are excluded, so ratio is 1.0.
    assert all(r == pytest.approx(1.0) for r in result.ratios_by_level[1])


def test_coverage_rows_format(world):
    graph, ixps, victims, sources = world
    result = ixp_coverage(graph, ixps, victims, sources)
    rows = coverage_rows(result)
    assert len(rows) == 5
    assert rows[0][0] == "Top-1 IXPs"
    for row in rows:
        p5, p25, median, p75, p95 = row[1:]
        assert p5 <= p25 <= median <= p75 <= p95


def test_choose_victims_are_stubs_and_deterministic(world):
    graph, _, _, _ = world
    victims = choose_victims(graph, 10, seed=5)
    assert victims == choose_victims(graph, 10, seed=5)
    from repro.interdomain.topology import Tier

    for victim in victims:
        assert graph.nodes[victim].tier is Tier.STUB
    with pytest.raises(ConfigurationError):
        choose_victims(graph, 10**6)


def test_validation(world):
    graph, ixps, victims, sources = world
    with pytest.raises(ConfigurationError):
        ixp_coverage(graph, ixps, [], sources)
    with pytest.raises(ConfigurationError):
        ixp_coverage(graph, ixps, victims, {})


def test_paper_band_reproduction():
    """The headline claim at the default calibration: Top-1 median ~0.6,
    Top-5 median >=0.7, upper quartile 0.8-0.95+ (paper VI-C)."""
    graph, ixps = generate_internet()  # full default topology
    victims = choose_victims(graph, 40)
    sources = dns_resolver_population(graph)
    result = ixp_coverage(graph, ixps, victims, sources)
    top1 = result.summary(1)
    top5 = result.summary(5)
    assert 0.4 < top1.median < 0.8
    assert top5.median >= top1.median
    assert top5.median > 0.6
    assert top5.p75 > 0.75
