"""The figure-series harness."""

import pytest

from repro.dataplane.cost_model import ImplementationVariant
from repro.dataplane.throughput import PAPER_PACKET_SIZES, ThroughputHarness


@pytest.fixture(scope="module")
def harness():
    return ThroughputHarness()


def test_fig8_sweep_shape(harness):
    reports = harness.all_variants_sweep()
    assert set(reports) == set(ImplementationVariant)
    for report in reports.values():
        assert report.packet_sizes == PAPER_PACKET_SIZES
        assert len(report.gbps) == len(report.mpps) == len(PAPER_PACKET_SIZES)
        # Wire throughput never exceeds the 10 Gb/s link.
        assert all(g <= 10.0 + 1e-9 for g in report.gbps)


def test_fig8_zero_copy_64b(harness):
    report = harness.packet_size_sweep(ImplementationVariant.SGX_ZERO_COPY)
    assert 7.0 < report.gbps[0] < 9.0  # 64 B
    assert report.gbps[-1] == pytest.approx(10.0, rel=0.01)  # 1500 B


def test_fig13_full_copy_cap(harness):
    report = harness.packet_size_sweep(ImplementationVariant.SGX_FULL_COPY)
    assert max(report.mpps) < 6.5


def test_fig3a_knee(harness):
    counts = [100, 1000, 2000, 3000, 4000, 6000, 8000, 10000]
    mpps = harness.rule_count_sweep(counts)
    # Flat through 3,000 rules...
    assert mpps[0] == pytest.approx(mpps[3], rel=0.02)
    # ...then a rapid decline.
    assert mpps[-1] < 0.4 * mpps[3]
    assert mpps == sorted(mpps, reverse=True)


def test_fig3b_memory_linear_and_crosses_epc(harness):
    counts = [0, 2000, 4000, 6000, 8000, 10000]
    mb = harness.memory_sweep(counts)
    diffs = [b - a for a, b in zip(mb, mb[1:])]
    assert all(d == pytest.approx(diffs[0], rel=1e-6) for d in diffs)  # linear
    assert mb[0] < 92 < mb[-1]  # the EPC line is crossed mid-sweep
    assert mb[-1] == pytest.approx(148, rel=0.1)  # ~150 MB at 10 K rules


def test_fig14_series(harness):
    series = harness.hash_ratio_sweep([0.01, 0.1, 0.5, 1.0])
    assert set(series) == set(PAPER_PACKET_SIZES)
    for size, values in series.items():
        assert values == sorted(values, reverse=True)
    # Only small packets degrade at a low hash ratio.
    assert series[64][1] < series[64][0]
    assert series[1500][1] == pytest.approx(series[1500][0], rel=0.01)


def test_latency_report(harness):
    report = harness.latency_sweep()
    assert report.packet_sizes == (128, 256, 512, 1024, 1500)
    assert list(report.latency_us) == sorted(report.latency_us)
    assert 30 < report.latency_us[0] < 40
    assert 100 < report.latency_us[-1] < 125


def test_batch_size_sweep(harness):
    report = harness.batch_size_sweep()
    assert report.batch_sizes == (1, 2, 4, 8, 16, 32, 64, 128)
    # More packets per transition never hurts.
    assert list(report.mpps) == sorted(report.mpps)
    # ECall accounting: exactly one transition per batch.
    assert list(report.ecalls_per_packet) == [
        pytest.approx(1 / b) for b in report.batch_sizes
    ]
    # Unbatched, the 8k-cycle transition dominates the ~2k-cycle packet cost.
    assert report.mpps[0] < 0.2 * report.mpps[-1]
    rows = report.as_rows()
    assert len(rows) == 8 and rows[0][0] == 1


def test_batch_sweep_consistent_with_packet_size_sweep(harness):
    """At the calibrated batch (32) the sweep agrees with Fig 8's 64 B point."""
    batch_report = harness.batch_size_sweep()
    fig8 = harness.packet_size_sweep(ImplementationVariant.SGX_ZERO_COPY)
    at_32 = batch_report.mpps[batch_report.batch_sizes.index(32)]
    assert at_32 == pytest.approx(fig8.mpps[0], rel=1e-9)


def test_throughput_report_rows(harness):
    report = harness.packet_size_sweep(ImplementationVariant.NATIVE)
    rows = report.as_rows()
    assert len(rows) == len(PAPER_PACKET_SIZES)
    assert rows[0][0] == 64
