"""The Fig 5 master/slave redistribution protocol."""

import pytest

from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rules import FilterRule, FlowPattern, RuleSet
from repro.errors import DistributionError
from repro.lookup.memory_model import EnclaveMemoryModel
from repro.tee.attestation import IASService
from repro.util.units import GBPS, MB
from tests.conftest import make_packet


def rule(rule_id, prefix):
    return FilterRule(
        rule_id=rule_id, pattern=FlowPattern(dst_prefix=prefix), p_allow=1.0
    )


def stand_up(num_rules=10, packets_per_rule=3, size=1000):
    controller = IXPController(IASService())
    controller.launch_filters(1)
    rules = RuleSet([rule(i, f"10.{i}.0.0/16") for i in range(1, num_rules + 1)])
    controller.install_single_filter(rules)
    for i in range(1, num_rules + 1):
        for j in range(packets_per_rule):
            controller.carry([make_packet(dst_ip=f"10.{i}.0.{j + 1}", size=size)])
    return controller, rules


def test_round_preserves_rule_set():
    controller, rules = stand_up()
    protocol = RuleDistributionProtocol(controller)
    record = protocol.run_round(window_s=1.0)
    installed = set()
    for enclave in controller.enclaves:
        installed |= {r.rule_id for r in enclave.ecall("installed_rules")}
    assert installed == {r.rule_id for r in rules}
    assert record.round_number == 1
    assert protocol.rounds == [record]


def test_round_uses_measured_rates():
    controller, _ = stand_up(num_rules=4, packets_per_rule=10)
    protocol = RuleDistributionProtocol(controller)
    record = protocol.run_round(window_s=2.0)
    # 10 packets x 1000 B x 8 bits over 2 s = 40 kb/s per rule.
    assert record.rates_bps[1] == pytest.approx(40_000)


def test_round_scales_fleet_to_load():
    """Rules with rates near the enclave cap force a multi-enclave fleet."""
    controller, _ = stand_up(num_rules=4, packets_per_rule=2, size=1500)
    protocol = RuleDistributionProtocol(
        controller, enclave_bandwidth=30_000.0  # tiny synthetic cap (bps)
    )
    record = protocol.run_round(window_s=1.0)
    # Each rule's rate is 2*1500*8 = 24 kb/s; total 96 kb/s >> 30 kb/s cap.
    assert record.num_enclaves_after >= 4
    assert record.num_enclaves_after == len(controller.enclaves)


def test_round_accepts_extra_rules():
    controller, _ = stand_up(num_rules=3)
    protocol = RuleDistributionProtocol(controller)
    extra = rule(99, "10.99.0.0/16").with_rate(1 * GBPS)
    protocol.run_round(window_s=1.0, extra_rules=[extra])
    installed = set()
    for enclave in controller.enclaves:
        installed |= {r.rule_id for r in enclave.ecall("installed_rules")}
    assert 99 in installed


def test_round_requires_enclaves_and_rules():
    controller = IXPController(IASService())
    protocol = RuleDistributionProtocol(controller)
    with pytest.raises(DistributionError):
        protocol.run_round(window_s=1.0)
    controller.launch_filters(1)
    with pytest.raises(DistributionError):
        protocol.run_round(window_s=1.0)
    with pytest.raises(DistributionError):
        stand_up_controller, _ = stand_up(1)
        RuleDistributionProtocol(stand_up_controller).run_round(
            window_s=1.0, master_index=5
        )


def test_needs_redistribution_rule_pressure():
    controller, _ = stand_up(num_rules=10)
    tight_memory = EnclaveMemoryModel(
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,
        epc_limit_bytes=12 * MB,
        performance_budget_bytes=11 * MB,  # capacity: 10 rules
    )
    protocol = RuleDistributionProtocol(
        controller, memory_model=tight_memory, rule_threshold=0.5
    )
    assert protocol.needs_redistribution(window_s=1.0)


def test_needs_redistribution_bandwidth_pressure():
    controller, _ = stand_up(num_rules=2, packets_per_rule=10, size=1500)
    protocol = RuleDistributionProtocol(
        controller, enclave_bandwidth=100_000.0, bandwidth_threshold=0.5
    )
    # 2 rules x 10 x 1500 B x 8 / 1 s = 240 kb/s on enclave 0 > 50 kb/s.
    assert protocol.needs_redistribution(window_s=1.0)


def test_no_redistribution_needed_when_idle():
    controller, _ = stand_up(num_rules=2, packets_per_rule=1)
    protocol = RuleDistributionProtocol(controller)
    assert not protocol.needs_redistribution(window_s=1.0)


def test_rules_moved_counting():
    controller, _ = stand_up(num_rules=6)
    protocol = RuleDistributionProtocol(controller)
    first = protocol.run_round(window_s=1.0)
    # Second round with identical rates should move nothing (same greedy
    # input -> same allocation).
    second = protocol.run_round(window_s=1.0)
    assert second.rules_moved == 0
    assert second.round_number == 2
