"""Untrusted controller + load balancer."""

import pytest

from repro.core.controller import IXPController, LoadBalancer
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.errors import ConfigurationError, DistributionError
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.tee.attestation import IASService
from repro.util.units import GBPS
from tests.conftest import VICTIM_PREFIX, make_packet


def rule(rule_id, prefix=VICTIM_PREFIX, p_allow=None, action=Action.DROP):
    if p_allow is not None:
        return FilterRule(
            rule_id=rule_id, pattern=FlowPattern(dst_prefix=prefix), p_allow=p_allow
        )
    return FilterRule(
        rule_id=rule_id, pattern=FlowPattern(dst_prefix=prefix), action=action
    )


# -- LoadBalancer -------------------------------------------------------------


def test_lb_routes_matching_packet():
    lb = LoadBalancer()
    rules = RuleSet([rule(1)])
    lb.configure(rules, {1: [(0, 1.0)]})
    assert lb.route(make_packet()) == 0


def test_lb_unmatched_returns_none():
    lb = LoadBalancer()
    lb.configure(RuleSet([rule(1)]), {1: [(0, 1.0)]})
    assert lb.route(make_packet(dst_ip="192.0.2.1")) is None
    assert lb.unrouted_packets == 1


def test_lb_flow_stickiness():
    lb = LoadBalancer()
    lb.configure(RuleSet([rule(1)]), {1: [(0, 0.5), (1, 0.5)]})
    packet = make_packet()
    first = lb.route(packet)
    assert all(lb.route(packet) == first for _ in range(10))


def test_lb_weighted_split_roughly_proportional():
    lb = LoadBalancer()
    lb.configure(RuleSet([rule(1)]), {1: [(0, 0.8), (1, 0.2)]})
    choices = [lb.route(make_packet(src_port=1024 + i)) for i in range(1000)]
    share0 = choices.count(0) / len(choices)
    assert 0.73 < share0 < 0.87


def test_lb_configure_validation():
    lb = LoadBalancer()
    with pytest.raises(ConfigurationError):
        lb.configure(RuleSet(), {1: [(0, 1.0)]})
    with pytest.raises(ConfigurationError):
        lb.configure(RuleSet([rule(1)]), {1: []})
    with pytest.raises(ConfigurationError):
        lb.configure(RuleSet([rule(1)]), {1: [(0, -1.0)]})


def test_lb_zero_weight_single_replica():
    lb = LoadBalancer()
    lb.configure(RuleSet([rule(1)]), {1: [(0, 0.0), (1, 0.0)]})
    assert lb.route(make_packet()) == 0


def test_lb_configure_rejects_nonfinite_weights():
    # Regression: a NaN weight passes the `w < 0` check (every NaN
    # comparison is False), poisons the running total in route(), and
    # silently lands all of the rule's traffic on the last replica.
    lb = LoadBalancer()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ConfigurationError):
            lb.configure(RuleSet([rule(1)]), {1: [(0, 0.5), (1, bad)]})


def test_lb_shard_for_flow_stable_and_uniform():
    packet = make_packet()
    flow = packet.five_tuple
    shard = LoadBalancer.shard_for_flow(flow, 4)
    assert shard == LoadBalancer.shard_for_flow(flow, 4)
    assert LoadBalancer.shard_for_flow(flow, 1) == 0
    with pytest.raises(ConfigurationError):
        LoadBalancer.shard_for_flow(flow, 0)
    # Different salts reshuffle; many flows spread over all shards.
    shards = {
        LoadBalancer.shard_for_flow(
            make_packet(src_port=1024 + i).five_tuple, 4
        )
        for i in range(64)
    }
    assert shards == {0, 1, 2, 3}


# -- IXPController --------------------------------------------------------------


def make_controller(n=1):
    controller = IXPController(IASService())
    controller.launch_filters(n)
    return controller


def test_launch_and_retire():
    controller = make_controller(3)
    assert len(controller.enclaves) == 3
    controller.retire_filters(2)
    assert len(controller.enclaves) == 1
    with pytest.raises(ConfigurationError):
        controller.retire_filters(5)
    with pytest.raises(ConfigurationError):
        controller.launch_filters(0)


def test_install_single_filter_and_carry():
    controller = make_controller(1)
    controller.install_single_filter(RuleSet([rule(1)]))
    delivered = controller.carry([make_packet(), make_packet(dst_ip="192.0.2.1")])
    # Matching packet dropped by rule; non-matching forwarded unfiltered.
    assert len(delivered) == 1
    assert delivered[0].dst_ip == "192.0.2.1"


def test_apply_allocation_installs_subsets():
    controller = make_controller(1)
    rules = RuleSet([rule(i, prefix=f"10.{i}.0.0/16") for i in range(1, 5)])
    problem = RuleDistributionProblem(
        bandwidths=[1 * GBPS] * 4, enclave_bandwidth=2 * GBPS, headroom=0.0
    )
    allocation = Allocation(
        problem=problem,
        assignments=[{0: 1 * GBPS, 1: 1 * GBPS}, {2: 1 * GBPS, 3: 1 * GBPS}],
    )
    controller.apply_allocation(rules, allocation)
    assert len(controller.enclaves) == 2
    ids_0 = {r.rule_id for r in controller.enclaves[0].ecall("installed_rules")}
    ids_1 = {r.rule_id for r in controller.enclaves[1].ecall("installed_rules")}
    assert ids_0 == {1, 2} and ids_1 == {3, 4}


def test_apply_allocation_rule_count_mismatch():
    controller = make_controller(1)
    rules = RuleSet([rule(1)])
    problem = RuleDistributionProblem(bandwidths=[1.0, 2.0])
    allocation = Allocation(problem=problem, assignments=[{0: 1.0, 1: 2.0}])
    with pytest.raises(DistributionError):
        controller.apply_allocation(rules, allocation)


def test_carry_through_allocation_routes_to_owner():
    controller = make_controller(1)
    rules = RuleSet(
        [rule(1, prefix="10.1.0.0/16"), rule(2, prefix="10.2.0.0/16")]
    )
    problem = RuleDistributionProblem(
        bandwidths=[1 * GBPS, 1 * GBPS], enclave_bandwidth=10 * GBPS, headroom=1.0
    )
    allocation = Allocation(
        problem=problem, assignments=[{0: 1 * GBPS}, {1: 1 * GBPS}]
    )
    controller.apply_allocation(rules, allocation)
    controller.carry(
        [make_packet(dst_ip="10.1.0.9"), make_packet(dst_ip="10.2.0.9")]
    )
    assert controller.enclaves[0].ecall("report").packets_processed == 1
    assert controller.enclaves[1].ecall("report").packets_processed == 1
    assert controller.misbehavior_reports() == []


def test_carry_batches_ecalls():
    """carry() must group consecutive same-enclave packets into burst
    ECalls instead of one transition per packet."""
    controller = make_controller(1)
    controller.install_single_filter(RuleSet([rule(1, p_allow=1.0)]))
    enclave = controller.enclaves[0]
    before = enclave.ecall_count
    delivered = controller.carry(
        [make_packet(src_port=1024 + i) for i in range(50)]
    )
    assert len(delivered) == 50
    # 50 consecutive packets for one enclave, carry_burst_size=64 -> 1 ECall.
    assert enclave.ecall_count == before + 1
    assert enclave.ecall("report").packets_processed == 50


def test_collect_rule_rates():
    controller = make_controller(1)
    controller.install_single_filter(RuleSet([rule(1, p_allow=1.0)]))
    for _ in range(4):
        controller.carry([make_packet(size=125)])
    rates = controller.collect_rule_rates(window_s=1.0)
    assert rates[1] == pytest.approx(4 * 125 * 8)
    with pytest.raises(ConfigurationError):
        controller.collect_rule_rates(0)


def test_rule_update_tick_propagates():
    controller = make_controller(2)
    controller.install_single_filter(RuleSet([rule(1, p_allow=0.5)]))
    for i in range(6):
        controller.carry([make_packet(src_port=1024 + i)])
    assert controller.rule_update_tick() == 6
