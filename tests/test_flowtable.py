"""Exact-match flow table and the hybrid batch-queue path."""

from repro.core.rules import Action
from repro.dataplane.packet import FiveTuple, Protocol
from repro.lookup.flowtable import ExactMatchFlowTable


def flow(port=1000):
    return FiveTuple(
        src_ip="10.0.0.1", dst_ip="203.0.113.1", src_port=port, dst_port=80,
        protocol=Protocol.TCP,
    )


def test_install_lookup_remove():
    table = ExactMatchFlowTable()
    table.install(flow(), Action.DROP)
    assert table.lookup(flow()) is Action.DROP
    assert flow() in table
    table.remove(flow())
    assert table.lookup(flow()) is None
    table.remove(flow())  # idempotent


def test_queue_does_not_apply_until_flush():
    table = ExactMatchFlowTable()
    table.queue(flow(), Action.ALLOW)
    assert table.lookup(flow()) is None
    assert table.pending_count == 1
    assert table.flush_pending() == 1
    assert table.lookup(flow()) is Action.ALLOW
    assert table.pending_count == 0


def test_flush_keeps_first_decision_for_duplicates():
    table = ExactMatchFlowTable()
    table.queue(flow(), Action.DROP)
    table.queue(flow(), Action.ALLOW)
    assert table.flush_pending() == 1
    assert table.lookup(flow()) is Action.DROP


def test_flush_does_not_overwrite_installed():
    table = ExactMatchFlowTable()
    table.install(flow(), Action.ALLOW)
    table.queue(flow(), Action.DROP)
    table.flush_pending()
    assert table.lookup(flow()) is Action.ALLOW


def test_memory_accounting():
    table = ExactMatchFlowTable()
    for i in range(10):
        table.install(flow(port=i + 1), Action.DROP)
    table.queue(flow(port=99), Action.ALLOW)
    assert table.memory_bytes() == 11 * ExactMatchFlowTable.BYTES_PER_ENTRY
    assert len(table) == 10


def test_entries_deterministic_order():
    table = ExactMatchFlowTable()
    table.install(flow(port=2), Action.DROP)
    table.install(flow(port=1), Action.ALLOW)
    ports = [f.src_port for f, _ in table.entries()]
    assert ports == [1, 2]
