"""The filtering-round scheduler."""

import pytest

from repro.adversary import BypassConfig, MaliciousFilteringNetwork
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rounds import RoundScheduler
from repro.core.rules import FilterRule, FlowPattern
from repro.core.session import SessionState
from repro.errors import ConfigurationError
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet


def rules(n=4):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(src_prefix=f"10.{i}.0.0/16",
                                dst_prefix=VICTIM_PREFIX),
            p_allow=0.5,
            requested_by=VICTIM,
        )
        for i in range(1, n + 1)
    ]


def traffic(round_number, flows_per_rule=10):
    packets = []
    for i in range(1, 5):
        for j in range(flows_per_rule):
            packets.append(
                make_packet(src_ip=f"10.{i}.0.{j + 1}", src_port=7000 + j)
            )
    return packets


@pytest.fixture
def scheduler(session):
    session.submit_rules(rules())
    protocol = RuleDistributionProtocol(session.controller)
    return RoundScheduler(session=session, protocol=protocol,
                          round_duration_s=60.0)


def test_honest_rounds_stay_active(scheduler):
    outcomes = scheduler.run(traffic, max_rounds=3)
    assert len(outcomes) == 3
    assert all(o.audit.clean for o in outcomes)
    assert scheduler.session.state is SessionState.ACTIVE
    assert [o.round_number for o in outcomes] == [1, 2, 3]
    assert outcomes[1].started_at_s == pytest.approx(60.0)


def test_delivery_counts_recorded(scheduler):
    outcome = scheduler.run_round(traffic(1))
    assert outcome.packets_sent == 40
    assert 0 < outcome.packets_delivered < 40  # ~50% connection survival


def test_redistribution_triggered_under_pressure(session):
    session.submit_rules(rules())
    # A tiny synthetic bandwidth cap guarantees pressure after one round.
    protocol = RuleDistributionProtocol(
        session.controller, enclave_bandwidth=2000.0, bandwidth_threshold=0.1
    )
    scheduler = RoundScheduler(session=session, protocol=protocol,
                               round_duration_s=1.0)
    outcome = scheduler.run_round(traffic(1))
    assert outcome.redistributed
    assert outcome.enclaves_after > 1
    assert outcome.audit.clean  # redistribution must not disturb the audit


def test_abort_stops_the_loop(session):
    session.submit_rules(rules())
    protocol = RuleDistributionProtocol(session.controller)
    cheat = MaliciousFilteringNetwork(
        session.controller, BypassConfig(drop_after_filtering=0.5)
    )
    scheduler = RoundScheduler(
        session=session, protocol=protocol, deliver=cheat.carry,
        round_duration_s=30.0,
    )
    outcomes = scheduler.run(traffic, max_rounds=5)
    assert len(outcomes) == 1  # aborted after the first audit
    assert outcomes[0].aborted
    assert session.state is SessionState.ABORTED
    with pytest.raises(ConfigurationError):
        scheduler.run_round(traffic(2))


def test_validation(session):
    session.submit_rules(rules())
    protocol = RuleDistributionProtocol(session.controller)
    with pytest.raises(ConfigurationError):
        RoundScheduler(session=session, protocol=protocol, round_duration_s=0)
    scheduler = RoundScheduler(session=session, protocol=protocol)
    with pytest.raises(ConfigurationError):
        scheduler.run(traffic, max_rounds=0)
