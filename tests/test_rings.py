"""DPDK-style rings."""

import pytest

from repro.dataplane.rings import Ring, RingOverflow
from repro.errors import ConfigurationError


def test_fifo_order():
    ring = Ring("r", capacity=8)
    for i in range(5):
        assert ring.enqueue(i)
    assert ring.dequeue_burst(3) == [0, 1, 2]
    assert ring.dequeue_burst(10) == [3, 4]


def test_overflow_counts_drops():
    ring = Ring("r", capacity=2)
    assert ring.enqueue(1) and ring.enqueue(2)
    assert not ring.enqueue(3)
    assert ring.dropped == 1
    assert len(ring) == 2


def test_enqueue_strict_raises():
    ring = Ring("r", capacity=1)
    ring.enqueue_strict("a")
    with pytest.raises(RingOverflow):
        ring.enqueue_strict("b")


def test_bulk_enqueue_partial():
    ring = Ring("r", capacity=3)
    assert ring.enqueue_bulk(range(5)) == 3
    assert ring.dropped == 2


def test_bulk_enqueue_full_ring_short_circuits():
    """Regression: enqueue_bulk kept calling enqueue() per item after the
    ring filled, paying a drop-counter increment per rejected item.  The
    overflow must be booked as ONE batched increment — with identical
    dropped/enqueued totals and ring contents."""

    class SpyCounter:
        def __init__(self, real):
            self.real = real
            self.calls = 0

        def inc(self, amount=1):
            self.calls += 1
            self.real.inc(amount)

        @property
        def value(self):
            return self.real.value

    ring = Ring("r", capacity=3)
    ring.enqueue_bulk([0, 1, 2])  # fill to capacity
    spy = SpyCounter(ring._dropped)
    ring._dropped = spy
    assert ring.enqueue_bulk(range(100, 150)) == 0
    assert spy.calls == 1  # one batched increment, not 50
    assert ring.dropped == 50
    assert ring.enqueued == 3
    assert ring.dequeue_burst(10) == [0, 1, 2]

    # Partial fit: accepted head preserved, tail dropped in the same
    # single increment.
    ring = Ring("r", capacity=4)
    ring.enqueue(0)
    spy = SpyCounter(ring._dropped)
    ring._dropped = spy
    assert ring.enqueue_bulk([1, 2, 3, 4, 5]) == 3
    assert spy.calls == 1
    assert ring.dropped == 2
    assert ring.dequeue_burst(10) == [0, 1, 2, 3]


def test_counters():
    ring = Ring("r", capacity=10)
    ring.enqueue_bulk(range(4))
    ring.dequeue_burst(2)
    assert ring.enqueued == 4
    assert ring.dequeued == 2
    assert not ring.empty


def test_burst_size_validation():
    ring = Ring("r")
    with pytest.raises(ValueError):
        ring.dequeue_burst(0)


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        Ring("r", capacity=0)
