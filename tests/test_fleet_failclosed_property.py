"""Property-style check of the fail-closed invariant under arbitrary faults.

For *any* seeded fault schedule — crashes, platform losses, EPC exhaustion,
IAS outages, in any interleaving with traffic — no packet destined for a
victim prefix may ever be delivered without an enclave verdict, even in the
window between an enclave dying and its replacement being attested.  The
harness re-derives this from the delivered packets against its own reference
rule set; the fleet's own counter must agree at zero.
"""

from __future__ import annotations

import pytest

from repro.core.controller import IXPController
from repro.core.fleet import FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RPKIRegistry, RuleSet
from repro.core.session import VIFSession
from repro.faults import FaultInjectionHarness, FaultSchedule, FlakyIAS
from repro.util.units import GBPS
from tests.conftest import VICTIM

SEEDS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]


def victim_rules(count: int = 10) -> RuleSet:
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{100 + i}.0/24"),
                # DROP rules make any unfiltered delivery observable: a
                # delivered packet for one is *always* a breach.
                action=Action.DROP,
                requested_by=VICTIM,
                rate_bps=1.5 * GBPS,
            )
        )
    return rules


def run_schedule(seed: str) -> "tuple":
    ias = FlakyIAS()
    controller = IXPController(ias)
    fleet = FleetManager(
        controller,
        config=FleetConfig(spare_platforms=1, seed=seed),
    )
    rules = victim_rules()
    fleet.deploy(rules, enclaves_override=5)
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, "203.0.0.0/16")
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    fleet.session = session

    schedule = FaultSchedule.generate(
        seed,
        rounds=8,
        fleet_size=5,
        crash_prob=0.2,
        platform_loss_prob=0.1,
        epc_exhaustion_prob=0.1,
        ias_outage_prob=0.15,
        ias_outage_length=2,
    )
    harness = FaultInjectionHarness(fleet, schedule, ias=ias)
    return fleet, harness.run()


@pytest.mark.parametrize("seed", SEEDS)
def test_no_victim_packet_delivered_unfiltered(seed):
    fleet, result = run_schedule(seed)
    # the harness's independent audit over the delivered packets
    assert result.invariant_violations == 0
    # the fleet's own books agree
    assert result.counters["unfiltered_packets"] == 0
    # every DROP rule means zero matching deliveries, period: double-check
    # from raw round records (no delivered dst may sit in a victim /24)
    for record in result.records:
        for packet in record.carry.delivered:
            octets = packet.five_tuple.dst_ip.split(".")
            assert not (
                octets[0] == "203"
                and octets[1] == "0"
                and 100 <= int(octets[2]) < 110
            ), f"victim packet delivered in round {record.round_index}"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_fleet_converges_to_valid_allocation(seed):
    fleet, result = run_schedule(seed)
    # after the full schedule the fleet either serves a feasible allocation
    # or has shed explicitly (never silently lost rules)
    assert result.final_allocation_violations == []
    kept = set(fleet.active_rule_ids)
    assert kept | fleet.shed_rule_ids == set(range(1, 11))
