"""Multi-IXP defense campaigns."""

import pytest

from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.deploy.multi_ixp import MultiIXPDefense
from repro.errors import ConfigurationError
from repro.interdomain.attack_sources import dns_resolver_population
from repro.interdomain.simulation import choose_victims
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet
from repro.util.rng import deterministic_rng

VICTIM_NAME = "victim.example"
VICTIM_PREFIX = "203.0.113.0/24"

SMALL = SyntheticInternetConfig(
    tier1_per_region=1, tier2_per_region=6, stubs_per_region=30, seed=12
)


@pytest.fixture(scope="module")
def world():
    graph, ixps = generate_internet(SMALL)
    victim = choose_victims(graph, 1, seed=4)[0]
    return graph, ixps, victim


def build_defense(world, top_n=1):
    graph, ixps, victim = world
    return MultiIXPDefense(
        graph, ixps, victim, VICTIM_NAME, VICTIM_PREFIX, top_n=top_n
    )


def drop_all_udp_rule():
    return FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix=VICTIM_PREFIX, src_ports=(53, 53), protocol=Protocol.UDP
        ),
        p_allow=0.0,
        requested_by=VICTIM_NAME,
    )


def attack_wave(graph, victim, per_as=2, seed=5):
    rng = deterministic_rng(f"wave:{seed}")
    sources = dns_resolver_population(graph, total_resolvers=600, seed=seed)
    wave = []
    for asn in sources:
        if asn == victim:
            continue
        for _ in range(per_as):
            five_tuple = FiveTuple(
                src_ip=(
                    f"{rng.randrange(1, 223)}.{rng.randrange(256)}."
                    f"{rng.randrange(256)}.{rng.randrange(1, 255)}"
                ),
                dst_ip="203.0.113.10",
                src_port=53,
                dst_port=rng.randrange(1024, 60000),
                protocol=Protocol.UDP,
            )
            wave.append((asn, Packet(five_tuple=five_tuple, size=1024)))
    return wave


def test_contracts_one_per_selected_ixp(world):
    defense = build_defense(world, top_n=1)
    assert defense.num_contracts == 5  # one per region
    defense2 = build_defense(world, top_n=2)
    assert defense2.num_contracts == 10


def test_unknown_victim_rejected(world):
    graph, ixps, _ = world
    with pytest.raises(ConfigurationError):
        MultiIXPDefense(graph, ixps, 10**9, VICTIM_NAME, VICTIM_PREFIX)


def test_interception_matches_path_membership(world):
    graph, ixps, victim = world
    defense = build_defense(world)
    from repro.interdomain.ixp import transited_ixps, membership_index
    from repro.interdomain.routing import as_path, route_tree

    routes = route_tree(graph, victim)
    index = membership_index(defense.selected)
    selected_ids = {x.ixp_id for x in defense.selected}
    checked = 0
    for source in list(graph.nodes)[:80]:
        if source == victim:
            continue
        point = defense.interception_point(source)
        path = as_path(routes, source)
        crossed = transited_ixps(path, index) & selected_ids if path else set()
        if point is None:
            assert not crossed
        else:
            assert point in crossed
        checked += 1
    assert checked > 0


def test_intercepted_fraction_of_dropped_traffic(world):
    """With a drop-everything rule, exactly the intercepted packets vanish
    and exactly the unintercepted ones arrive."""
    graph, ixps, victim = world
    defense = build_defense(world)
    defense.submit_rules([drop_all_udp_rule()])
    wave = attack_wave(graph, victim)
    report = defense.carry_attack(wave)
    assert report.packets_sent == len(wave)
    assert report.packets_filtered_at_ixps + report.packets_unintercepted == (
        report.packets_sent
    )
    assert report.packets_delivered == report.packets_unintercepted
    assert 0.0 < report.interception_ratio < 1.0
    assert report.residual_ratio == pytest.approx(
        1.0 - report.interception_ratio
    )


def test_more_ixps_never_reduce_interception(world):
    graph, ixps, victim = world
    wave = attack_wave(graph, victim)
    ratios = []
    for top_n in (1, 3):
        defense = build_defense(world, top_n=top_n)
        defense.submit_rules([drop_all_udp_rule()])
        ratios.append(defense.carry_attack(wave).interception_ratio)
    assert ratios[1] >= ratios[0] - 1e-12


def test_audits_clean_after_honest_wave(world):
    graph, ixps, victim = world
    defense = build_defense(world)
    defense.submit_rules([drop_all_udp_rule()])
    defense.carry_attack(attack_wave(graph, victim))
    audits = defense.audit_all()
    assert len(audits) == defense.num_contracts
    assert all(evidence.clean for evidence in audits.values())


def test_per_ixp_accounting(world):
    graph, ixps, victim = world
    defense = build_defense(world)
    defense.submit_rules([drop_all_udp_rule()])
    report = defense.carry_attack(attack_wave(graph, victim))
    assert sum(report.per_ixp_processed.values()) == (
        report.packets_sent - report.packets_unintercepted
    )
    for ixp_id in report.per_ixp_processed:
        assert ixp_id in defense.deployments


def test_empty_wave(world):
    defense = build_defense(world)
    report = defense.carry_attack([])
    assert report.packets_sent == 0
    assert report.interception_ratio == 0.0
    assert report.residual_ratio == 0.0


def test_cheating_ixp_is_identified_and_replaced(world):
    """One of the five contracted IXPs skims traffic around its filters;
    the per-contract audits pin the blame on exactly that IXP, and the
    victim re-contracts the region's next-largest exchange."""
    from repro.adversary import BypassConfig, MaliciousFilteringNetwork

    graph, ixps, victim = world
    defense = build_defense(world, top_n=1)
    defense.submit_rules([drop_all_udp_rule()])
    wave = attack_wave(graph, victim)

    # Pick a contracted IXP that actually sees traffic in this wave.
    probe = defense.carry_attack(wave)
    assert probe.per_ixp_processed, "wave never crosses a contracted IXP"
    cheater_id = max(probe.per_ixp_processed, key=probe.per_ixp_processed.get)
    cheater_region = next(
        x.region for x in defense.selected if x.ixp_id == cheater_id
    )
    cheat = MaliciousFilteringNetwork(
        defense.deployments[cheater_id].controller,
        BypassConfig(skip_filter_fraction=0.5),
    )
    defense.delivery_overrides[cheater_id] = cheat.carry
    defense.carry_attack(wave)

    evidence, replacements = defense.audit_and_replace()
    dirty = [ixp_id for ixp_id, ev in evidence.items() if not ev.clean]
    assert dirty == [cheater_id]  # blame lands on exactly the cheater
    assert cheater_id not in defense.sessions
    # A same-region replacement was contracted with the rules installed.
    assert len(replacements) == 1
    new_id = replacements[0]
    assert next(
        x.region for x in defense.selected if x.ixp_id == new_id
    ) == cheater_region
    assert len(defense.sessions[new_id].installed_rules) == 1
    assert defense.num_contracts == 5


def test_replace_contract_validation(world):
    defense = build_defense(world)
    with pytest.raises(ConfigurationError):
        defense.replace_contract("not-a-contract")


def test_carry_attack_by_ip_consistent_addressing(world):
    """With the synthetic addressing plan, packets' source IPs alone drive
    interception — no side-channel ASN labels needed."""
    from repro.interdomain.addressing import host_ip, materialize_sources
    from repro.interdomain.attack_sources import dns_resolver_population

    graph, ixps, victim = world
    defense = build_defense(world)
    defense.submit_rules([drop_all_udp_rule()])

    population = dns_resolver_population(graph, total_resolvers=400, seed=6)
    ips_by_as = materialize_sources(graph, population, max_per_as=2)
    rng = deterministic_rng("ipwave")
    packets = []
    expected_pairs = []
    for asn, addrs in ips_by_as.items():
        if asn == victim:
            continue
        for addr in addrs:
            packet = Packet(
                five_tuple=FiveTuple(
                    src_ip=addr, dst_ip="203.0.113.10", src_port=53,
                    dst_port=rng.randrange(1024, 60000),
                    protocol=Protocol.UDP,
                ),
                size=1024,
            )
            packets.append(packet)
            expected_pairs.append((asn, packet))

    by_ip = defense.carry_attack_by_ip(packets)
    explicit = build_defense(world)
    explicit.submit_rules([drop_all_udp_rule()])
    by_label = explicit.carry_attack(expected_pairs)
    assert by_ip.interception_ratio == pytest.approx(by_label.interception_ratio)
    assert by_ip.packets_delivered == by_label.packets_delivered


def test_carry_attack_by_ip_unmapped_sources_pass_through(world):
    defense = build_defense(world)
    defense.submit_rules([drop_all_udp_rule()])
    alien = Packet(
        five_tuple=FiveTuple(
            src_ip="240.0.0.9", dst_ip="203.0.113.10", src_port=53,
            dst_port=4444, protocol=Protocol.UDP,
        ),
        size=1024,
    )
    report = defense.carry_attack_by_ip([alien])
    assert report.packets_unintercepted == 1
    assert report.packets_delivered == 1
