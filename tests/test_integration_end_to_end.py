"""Full-system integration: victim + IXP + attack + scale-out + audits.

One long scenario exercising every subsystem together, plus integration
checks that cut across module boundaries (sealed channel -> enclave ->
sketch -> audit; greedy allocation -> controller -> LB -> enclave checks).
"""

import pytest

from repro.adversary import BypassConfig, MaliciousFilteringNetwork, dns_amplification_flows
from repro.core.bypass import NeighborAuditor, merge_enclave_logs
from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rules import FilterRule, FlowPattern, RPKIRegistry
from repro.core.session import SessionState, VIFSession
from repro.dataplane.packet import Protocol
from repro.tee.attestation import IASService
from tests.conftest import VICTIM, VICTIM_PREFIX


def build_world(num_filters=2):
    ias = IASService()
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    controller = IXPController(ias)
    controller.launch_filters(num_filters, scale_out=num_filters > 1)
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    return ias, rpki, controller, session


def reflection_rules(prefix_octets, p_allow=0.1):
    return [
        FilterRule(
            rule_id=100 + i,
            pattern=FlowPattern(
                src_prefix=f"{octet}.0.0.0/8",
                dst_prefix=VICTIM_PREFIX,
                src_ports=(53, 53),
                protocol=Protocol.UDP,
            ),
            p_allow=p_allow,
            requested_by=VICTIM,
        )
        for i, octet in enumerate(sorted(prefix_octets))
    ]


def test_full_campaign_honest():
    _, _, controller, session = build_world()
    flows = dns_amplification_flows(600, ingress_ases=(64500, 64501))
    octets = {f.five_tuple.src_ip.split(".")[0] for f in flows}
    session.submit_rules(reflection_rules(octets))

    neighbors = {asn: NeighborAuditor(asn) for asn in (64500, 64501)}
    packets = []
    for flow in flows:
        for _ in range(2):
            packet = flow.make_packet()
            packets.append(packet)
            neighbors[packet.ingress_as].observe(packet)

    delivered = controller.carry(packets)
    # ~10% of connections survive the p_allow=0.1 rules.
    assert 0.03 < len(delivered) / len(packets) < 0.2

    # Scale out on measured rates, attest, and run a second wave.
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=2e6)
    session.scale_out(protocol, window_s=1.0)
    delivered2 = controller.carry(packets)
    assert {p.five_tuple for p in delivered} == {p.five_tuple for p in delivered2}

    session.observe_delivered(delivered)
    session.observe_delivered(delivered2)
    evidence = session.audit_round()
    assert evidence.clean
    assert session.state is SessionState.ACTIVE

    merged_in = merge_enclave_logs(controller.collect_incoming_logs())
    for auditor in neighbors.values():
        # The neighbors handed each packet once but two waves went through
        # the filters, so the enclave-side counts dominate: clean.
        assert auditor.audit(merged_in).clean
    assert controller.misbehavior_reports() == []


def test_full_campaign_with_cheating_ixp():
    _, _, controller, session = build_world(num_filters=1)
    flows = dns_amplification_flows(300, ingress_ases=(64500,))
    octets = {f.five_tuple.src_ip.split(".")[0] for f in flows}
    session.submit_rules(reflection_rules(octets, p_allow=0.5))

    network = MaliciousFilteringNetwork(
        controller, BypassConfig(skip_filter_fraction=0.25)
    )
    packets = [f.make_packet() for f in flows]
    delivered = network.carry(packets)
    assert network.packets_skipped_filter > 0
    session.observe_delivered(delivered)
    evidence = session.audit_round()
    assert not evidence.clean
    assert session.state is SessionState.ABORTED
    # Once aborted, the victim refuses to continue the contract.
    with pytest.raises(Exception):
        session.submit_rules(reflection_rules({"9"}))


def test_load_balancer_misrouting_is_reported_by_enclaves():
    """Cross-module: greedy allocation -> controller -> enclave check."""
    _, _, controller, session = build_world(num_filters=1)
    rules = [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(src_prefix=f"10.{i}.0.0/16",
                                dst_prefix=VICTIM_PREFIX),
            p_allow=1.0,
            requested_by=VICTIM,
        )
        for i in range(1, 5)
    ]
    session.submit_rules(rules)
    from tests.conftest import make_packet

    for i in range(1, 5):
        controller.carry([make_packet(src_ip=f"10.{i}.0.1", size=1500)])
    protocol = RuleDistributionProtocol(controller, enclave_bandwidth=15_000.0)
    session.scale_out(protocol, window_s=1.0)
    assert len(controller.enclaves) >= 2

    # A malicious LB sends a rule-1 packet to an enclave that owns other
    # rules: that enclave reports it.
    target = None
    for j, enclave in enumerate(controller.enclaves):
        owned = {r.rule_id for r in enclave.ecall("installed_rules")}
        if 1 not in owned and owned:
            target = j
            break
    assert target is not None
    controller.enclaves[target].ecall(
        "process_packet", make_packet(src_ip="10.1.0.1")
    )
    reports = controller.misbehavior_reports()
    assert reports and any("not assigned" in r or "non-matching" in r for r in reports)
