"""Every example script must run end to end (they are the user-facing API
surface; breaking one is breaking the README)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _load_and_run(path: pathlib.Path, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    out = _load_and_run(path, capsys)
    assert out.strip(), f"{path.stem} produced no output"


def test_quickstart_output_contract(capsys):
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    out = _load_and_run(path, capsys)
    assert "attestation: verdict=OK" in out
    assert "no bypass detected" in out


def test_bypass_demo_detects_everything(capsys):
    path = next(p for p in EXAMPLES if p.stem == "bypass_detection_demo")
    out = _load_and_run(path, capsys)
    # Every attack row says YES, the honest row says no.
    lines = [l for l in out.splitlines() if "YES" in l or "honest" in l]
    attack_lines = [l for l in lines if "honest" not in l]
    assert len(attack_lines) >= 4
    honest = next(l for l in lines if "honest" in l)
    assert "YES" not in honest
