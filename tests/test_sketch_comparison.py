"""Sketch discrepancy detection — the bypass-audit primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.comparison import compare_sketches
from repro.sketch.countmin import CountMinSketch


def pair(width=256):
    return (
        CountMinSketch(2, width, "cmp"),
        CountMinSketch(2, width, "cmp"),
    )


def test_identical_sketches_clean():
    a, b = pair()
    for i in range(20):
        a.update(f"k{i}".encode())
        b.update(f"k{i}".encode())
    result = compare_sketches(a, b)
    assert result.clean
    assert not result.drop_suspected and not result.injection_suspected


def test_missing_at_observer_flags_drop():
    enclave, observer = pair()
    enclave.update(b"flow", 10)
    observer.update(b"flow", 6)  # 4 packets never arrived
    result = compare_sketches(enclave, observer)
    assert result.drop_suspected
    assert not result.injection_suspected
    # Per-row sums each see the 4 lost packets; the report takes the max.
    assert result.total_missing == 4


def test_extra_at_observer_flags_injection():
    enclave, observer = pair()
    observer.update(b"ghost", 3)  # enclave never logged these
    result = compare_sketches(enclave, observer)
    assert result.injection_suspected
    assert not result.drop_suspected


def test_tolerance_absorbs_benign_loss():
    enclave, observer = pair()
    enclave.update(b"flow", 100)
    observer.update(b"flow", 99)  # one benign loss
    assert not compare_sketches(enclave, observer, tolerance=1).discrepancies
    assert compare_sketches(enclave, observer, tolerance=0).drop_suspected


def test_tolerance_validation():
    a, b = pair()
    with pytest.raises(ValueError):
        compare_sketches(a, b, tolerance=-1)


def test_family_mismatch_rejected():
    a = CountMinSketch(2, 256, "one")
    b = CountMinSketch(2, 256, "two")
    with pytest.raises(ValueError):
        compare_sketches(a, b)


def test_mixed_derivation_versions_fail_loudly():
    """Same seed and shape, different derivation version: never comparable.

    A v1-derivation observer sketch against a v2 enclave sketch would
    compare garbage bins bin-by-bin; the version check must refuse before
    any bin is read.
    """
    from repro.sketch.hashing import FAMILY_VERSION, HashFamily

    class LegacyFamily(HashFamily):
        version = FAMILY_VERSION - 1

    enclave = CountMinSketch(2, 256, "cmp")
    observer = CountMinSketch(2, 256, "cmp")
    observer.family.__class__ = LegacyFamily
    assert not enclave.family.compatible_with(observer.family)
    with pytest.raises(ValueError, match="different hash families"):
        compare_sketches(enclave, observer)


def test_mixed_version_blob_rejected_and_mismatch_journaled():
    """A serialized blob carrying a foreign derivation version is refused at
    deserialization, and the audit timeline journals the structural failure
    as a family-version-mismatch alert."""
    from repro import obs
    from repro.obs.audit import ALERT_FAMILY_MISMATCH, AuditTimeline

    sketch = CountMinSketch(2, 64, "cmp")
    sketch.update(b"flow", 3)
    blob = bytearray(sketch.serialize())
    blob[1] += 1  # the family-derivation version byte
    with pytest.raises(ValueError, match="derivation") as excinfo:
        CountMinSketch.deserialize(bytes(blob))

    prev = obs.set_journal(obs.EventJournal(enabled=True))
    try:
        timeline = AuditTimeline(session_id="victim.example")
        alert = timeline.record_family_mismatch(
            7, excinfo.value, observer="victim:victim.example"
        )
        assert alert.kind == ALERT_FAMILY_MISMATCH
        assert alert.round_id == 7
        events = obs.get_journal().of_type("alert")
        assert len(events) == 1
        assert events[0].round_id == 7
        assert events[0].payload["kind"] == ALERT_FAMILY_MISMATCH
        assert "derivation" in events[0].payload["detail"]
    finally:
        obs.set_journal(prev)


def test_comparison_carries_geometry_and_totals():
    enclave, observer = pair(width=64)
    enclave.update(b"x", 5)
    observer.update(b"x", 2)
    result = compare_sketches(enclave, observer)
    assert (result.depth, result.width) == (2, 64)
    assert result.enclave_total == 5
    assert result.observer_total == 2


def test_discrepancy_fields():
    enclave, observer = pair(width=64)
    enclave.update(b"x", 5)
    result = compare_sketches(enclave, observer)
    for disc in result.discrepancies:
        assert disc.enclave_count == 5
        assert disc.observer_count == 0
        assert disc.missing_at_observer == 5
        assert disc.extra_at_observer == 0


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=8),
        st.integers(min_value=1, max_value=20),
        max_size=20,
    )
)
def test_no_false_positives_on_identical_streams(stream):
    """An honest network never trips the audit, whatever the traffic."""
    enclave, observer = pair(width=128)
    for key, count in stream.items():
        enclave.update(key, count)
        observer.update(key, count)
    assert compare_sketches(enclave, observer).clean


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=8),
        st.integers(min_value=1, max_value=20),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_any_dropped_packet_is_detected(stream, dropped):
    """Soundness: dropping packets of any flow always shows as missing."""
    enclave, observer = pair(width=128)
    victim_key = sorted(stream)[0]
    for key, count in stream.items():
        enclave.update(key, count)
        seen = count - dropped if key == victim_key else count
        if seen > 0:
            observer.update(key, seen)
    result = compare_sketches(enclave, observer)
    assert result.drop_suspected
    assert result.total_missing >= min(dropped, stream[victim_key])
