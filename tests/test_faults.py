"""Fault schedules, injector dispatch, FlakyIAS, and the harness."""

from __future__ import annotations

import pytest

from repro.core.controller import IXPController
from repro.core.enclave_filter import EnclaveFilter
from repro.core.fleet import FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
from repro.errors import AttestationError, ConfigurationError
from repro.faults import (
    FaultEvent,
    FaultInjectionHarness,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FlakyIAS,
)
from repro.tee.attestation import generate_quote
from repro.tee.enclave import Platform
from repro.util.units import GBPS
from tests.conftest import VICTIM


def build_rules(count: int = 8, rate_bps: float = 2.0 * GBPS) -> RuleSet:
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{100 + i}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by=VICTIM,
                rate_bps=rate_bps,
            )
        )
    return rules


class TestFaultSchedule:
    def test_generate_is_deterministic(self):
        a = FaultSchedule.generate("s1", rounds=20, fleet_size=8,
                                   crash_prob=0.3, ias_outage_prob=0.2)
        b = FaultSchedule.generate("s1", rounds=20, fleet_size=8,
                                   crash_prob=0.3, ias_outage_prob=0.2)
        assert a.events == b.events

    def test_generate_varies_with_seed(self):
        a = FaultSchedule.generate("s1", rounds=50, fleet_size=8, crash_prob=0.3)
        b = FaultSchedule.generate("s2", rounds=50, fleet_size=8, crash_prob=0.3)
        assert a.events != b.events

    def test_generate_targets_inside_fleet(self):
        schedule = FaultSchedule.generate(
            "s", rounds=50, fleet_size=5, crash_prob=0.5,
            epc_exhaustion_prob=0.2, platform_loss_prob=0.2,
        )
        assert schedule.enclave_faults > 0
        for event in schedule.events:
            assert 0 <= event.round_index < 50
            if event.kind is not FaultKind.IAS_OUTAGE:
                assert 0 <= event.target < 5

    def test_kill_fraction_counts_distinct_slots(self):
        schedule = FaultSchedule.kill_fraction(
            "acceptance", rounds=10, fleet_size=10, fraction=0.2
        )
        assert len(schedule.events) == 2
        assert len({e.target for e in schedule.events}) == 2
        assert all(e.round_index == 5 for e in schedule.events)
        assert all(e.kind is FaultKind.CRASH for e in schedule.events)

    def test_kill_fraction_validation(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            FaultSchedule.kill_fraction("s", rounds=4, fleet_size=4, fraction=0.0)
        with pytest.raises(ConfigurationError, match="enclave-scoped"):
            FaultSchedule.kill_fraction(
                "s", rounds=4, fleet_size=4, fraction=0.5,
                kind=FaultKind.IAS_OUTAGE,
            )

    def test_event_outside_rounds_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            FaultSchedule(
                rounds=2,
                events=(FaultEvent(round_index=5, kind=FaultKind.CRASH),),
            )

    def test_for_round_preserves_order(self):
        e0 = FaultEvent(round_index=1, kind=FaultKind.CRASH, target=0)
        e1 = FaultEvent(round_index=1, kind=FaultKind.EPC_EXHAUSTION, target=1)
        schedule = FaultSchedule(rounds=3, events=(e0, e1))
        assert schedule.for_round(1) == [e0, e1]
        assert schedule.for_round(0) == []


class TestFlakyIAS:
    def test_fails_next_k_then_recovers(self):
        ias = FlakyIAS()
        platform = Platform("p1")
        ias.provision(platform)
        enclave = platform.launch(EnclaveFilter(secret="flaky-test"))
        quote = generate_quote(enclave, b"nonce")
        ias.fail_next(2)
        for _ in range(2):
            with pytest.raises(AttestationError, match="injected outage"):
                ias.verify_quote(quote)
        report = ias.verify_quote(quote)
        assert report.ok
        assert ias.failed_verifications == 2
        assert ias.outage_remaining == 0

    def test_outages_stack(self):
        ias = FlakyIAS()
        ias.fail_next(1)
        ias.fail_next(2)
        assert ias.outage_remaining == 3

    def test_negative_outage_rejected(self):
        with pytest.raises(ConfigurationError):
            FlakyIAS().fail_next(-1)


class TestFaultInjector:
    def make_fleet(self, ias=None):
        controller = IXPController(ias or FlakyIAS())
        fleet = FleetManager(
            controller, config=FleetConfig(spare_platforms=0)
        )
        fleet.deploy(build_rules(), enclaves_override=3)
        return fleet

    def test_crash_dispatch(self):
        fleet = self.make_fleet()
        injector = FaultInjector(fleet)
        injector.apply(FaultEvent(round_index=0, kind=FaultKind.CRASH, target=1))
        assert fleet.controller.enclaves[1].destroyed
        assert injector.applied

    def test_epc_dispatch_starves_platform(self):
        fleet = self.make_fleet()
        FaultInjector(fleet).apply(
            FaultEvent(round_index=0, kind=FaultKind.EPC_EXHAUSTION, target=0)
        )
        report = fleet.recover()
        assert report.orphaned_slots == [0]

    def test_ias_outage_requires_flaky_ias(self):
        fleet = self.make_fleet()
        injector = FaultInjector(fleet)  # no ias wired in
        with pytest.raises(ConfigurationError, match="FlakyIAS"):
            injector.apply(
                FaultEvent(round_index=0, kind=FaultKind.IAS_OUTAGE, magnitude=1)
            )

    def test_target_wraps_modulo_fleet(self):
        fleet = self.make_fleet()
        FaultInjector(fleet).apply(
            FaultEvent(round_index=0, kind=FaultKind.CRASH, target=7)
        )
        assert fleet.controller.enclaves[7 % 3].destroyed


class TestHarness:
    def run_harness(self, seed="harness"):
        ias = FlakyIAS()
        controller = IXPController(ias)
        fleet = FleetManager(
            controller, config=FleetConfig(spare_platforms=2, seed=seed)
        )
        fleet.deploy(build_rules(), enclaves_override=4)
        schedule = FaultSchedule.generate(
            seed, rounds=6, fleet_size=4,
            crash_prob=0.25, epc_exhaustion_prob=0.1, ias_outage_prob=0.15,
        )
        harness = FaultInjectionHarness(fleet, schedule, ias=ias)
        return harness.run()

    def test_run_completes_with_invariant_intact(self):
        result = self.run_harness()
        assert result.rounds == 6
        assert result.invariant_violations == 0
        assert result.counters["unfiltered_packets"] == 0
        assert result.packets_sent > 0
        assert result.packets_delivered > 0
        assert result.final_allocation_violations == []

    def test_run_is_deterministic(self):
        a = self.run_harness(seed="det")
        b = self.run_harness(seed="det")
        assert a.summary() == b.summary()
        for ra, rb in zip(a.records, b.records):
            assert ra.carry.sent == rb.carry.sent
            assert len(ra.carry.delivered) == len(rb.carry.delivered)
            assert ra.recovery.relaunched_slots == rb.recovery.relaunched_slots

    def test_summary_shape(self):
        summary = self.run_harness().summary()
        for key in (
            "rounds", "packets_sent", "packets_delivered",
            "packets_lost_to_failover", "invariant_violations",
            "recovery_failures", "allocation_valid",
            "fleet_failovers", "fleet_unfiltered_packets",
        ):
            assert key in summary
