"""The stateful-filtering extension: the naive design is manipulable, the
auditable design is not (paper III-A applied to the conclusion's
future-work direction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stateful import (
    AuditableRateLimitFilter,
    NaiveStatefulFirewall,
    SourceGroupQuota,
    fair_share_quotas,
)
from repro.errors import ConfigurationError
from repro.tee.clock import HostClock, UntrustedClock
from tests.conftest import make_packet


# -- the counter-example: order and clock manipulation succeed -----------------


def test_naive_firewall_is_order_dependent():
    """The SAME packets in a different order get different verdicts —
    violating arrival-order independence (paper III-A)."""
    host = HostClock()
    data = make_packet(src_port=5000)

    fw1 = NaiveStatefulFirewall(UntrustedClock(host))
    fw1.process(data.clone(), syn=True)
    in_order = fw1.process(data.clone())

    fw2 = NaiveStatefulFirewall(UntrustedClock(host))
    reordered = fw2.process(data.clone())  # host delivered data before SYN
    fw2.process(data.clone(), syn=True)

    assert in_order is True
    assert reordered is False  # verdict flipped purely by reordering


def test_naive_firewall_is_clock_dependent():
    """Slowing the enclave's time feed starves the token bucket —
    the III-A clock-delay attack."""
    host = HostClock()

    honest_clock = UntrustedClock(host)
    fw_honest = NaiveStatefulFirewall(honest_clock, rate_per_s=10, burst=5)
    slowed_clock = UntrustedClock(host)
    slowed_clock.set_rate(0.0)  # host stalls time responses
    fw_starved = NaiveStatefulFirewall(slowed_clock, rate_per_s=10, burst=5)

    packet = make_packet(src_port=6000)
    fw_honest.process(packet.clone(), syn=True)
    fw_starved.process(packet.clone(), syn=True)

    honest_admitted = 0
    starved_admitted = 0
    for _ in range(50):
        host.advance(0.1)  # real time passes; the starved clock sees none
        if fw_honest.process(packet.clone()):
            honest_admitted += 1
        if fw_starved.process(packet.clone()):
            starved_admitted += 1
    assert honest_admitted > starved_admitted
    assert starved_admitted <= 5  # at most the initial burst


def test_naive_firewall_validation():
    host = HostClock()
    with pytest.raises(ConfigurationError):
        NaiveStatefulFirewall(UntrustedClock(host), rate_per_s=0)


# -- the auditable alternative ---------------------------------------------------


def quota(fraction=0.5, prefix="10.0.0.0/8", quota_id=1):
    return SourceGroupQuota(
        quota_id=quota_id, group_prefix=prefix, admit_fraction=fraction
    )


def test_auditable_filter_order_independent():
    packets = [make_packet(src_port=1000 + i) for i in range(100)]
    f1 = AuditableRateLimitFilter("secret")
    f1.install_quota(quota())
    forward = {p.five_tuple: f1.admit(p) for p in packets}
    f2 = AuditableRateLimitFilter("secret")
    f2.install_quota(quota())
    backward = {p.five_tuple: f2.admit(p) for p in reversed(packets)}
    assert forward == backward


def test_auditable_filter_clock_free():
    """No clock input exists at all: the same instance gives the same
    verdict no matter how much host time passes (trivially true — there is
    nothing to manipulate)."""
    filt = AuditableRateLimitFilter("secret")
    filt.install_quota(quota())
    packet = make_packet()
    verdicts = {filt.admit(packet) for _ in range(10)}
    assert len(verdicts) == 1


def test_quota_fraction_is_respected():
    filt = AuditableRateLimitFilter("secret")
    filt.install_quota(quota(fraction=0.3))
    packets = [make_packet(src_port=2000 + i) for i in range(1000)]
    admitted = sum(1 for p in packets if filt.admit(p))
    assert 0.24 < admitted / len(packets) < 0.36


def test_quota_only_applies_to_its_group():
    filt = AuditableRateLimitFilter("secret")
    filt.install_quota(quota(fraction=0.0, prefix="10.0.0.0/8"))
    assert not filt.admit(make_packet(src_ip="10.1.1.1"))
    assert filt.admit(make_packet(src_ip="172.16.0.1"))  # outside the group


def test_multiple_quotas_conjunctive():
    filt = AuditableRateLimitFilter("secret")
    filt.install_quota(quota(fraction=1.0, prefix="10.0.0.0/8", quota_id=1))
    filt.install_quota(quota(fraction=0.0, prefix="10.1.0.0/16", quota_id=2))
    assert filt.admit(make_packet(src_ip="10.2.0.1"))  # only quota 1 covers
    assert not filt.admit(make_packet(src_ip="10.1.0.1"))  # quota 2 vetoes


def test_quota_update_and_remove():
    filt = AuditableRateLimitFilter("secret")
    filt.install_quota(quota(fraction=0.0))
    packet = make_packet(src_ip="10.1.1.1")
    assert not filt.admit(packet)
    filt.update_quota(quota(fraction=1.0))
    assert filt.admit(packet)
    filt.remove_quota(1)
    assert filt.num_quotas == 0
    with pytest.raises(ConfigurationError):
        filt.install_quota(quota())
        filt.install_quota(quota())


def test_validation():
    with pytest.raises(ConfigurationError):
        AuditableRateLimitFilter("")
    with pytest.raises(ConfigurationError):
        SourceGroupQuota(quota_id=1, group_prefix="nope", admit_fraction=0.5)
    with pytest.raises(ConfigurationError):
        SourceGroupQuota(quota_id=1, group_prefix="10.0.0.0/8", admit_fraction=2.0)


def test_describe():
    filt = AuditableRateLimitFilter("secret")
    assert "no quotas" in filt.describe()
    filt.install_quota(quota(fraction=0.25))
    assert "25%" in filt.describe()


# -- fair-share quota derivation -----------------------------------------------------


def test_fair_share_light_groups_fully_admitted():
    quotas = fair_share_quotas(
        {"10.1.0.0/16": 10.0, "10.2.0.0/16": 1000.0}, capacity_bps=200.0
    )
    assert quotas["10.1.0.0/16"].admit_fraction == pytest.approx(1.0)
    # The heavy group gets the leftover 190 of its 1000.
    assert quotas["10.2.0.0/16"].admit_fraction == pytest.approx(0.19)


def test_fair_share_even_split_when_all_heavy():
    quotas = fair_share_quotas(
        {"10.1.0.0/16": 500.0, "10.2.0.0/16": 500.0}, capacity_bps=100.0
    )
    for q in quotas.values():
        assert q.admit_fraction == pytest.approx(0.1)


def test_fair_share_total_within_capacity():
    rates = {f"10.{i}.0.0/16": float(50 * (i + 1)) for i in range(8)}
    quotas = fair_share_quotas(rates, capacity_bps=600.0)
    admitted = sum(rates[g] * q.admit_fraction for g, q in quotas.items())
    assert admitted == pytest.approx(600.0, rel=1e-6)


def test_fair_share_validation_and_empty():
    with pytest.raises(ConfigurationError):
        fair_share_quotas({"10.0.0.0/8": 1.0}, capacity_bps=0)
    assert fair_share_quotas({}, capacity_bps=10.0) == {}


def test_fair_share_zero_rate_group():
    quotas = fair_share_quotas(
        {"10.1.0.0/16": 0.0, "10.2.0.0/16": 100.0}, capacity_bps=50.0
    )
    assert quotas["10.1.0.0/16"].admit_fraction == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed_port=st.integers(min_value=1, max_value=60000),
)
def test_auditable_admission_is_pure_function(fraction, seed_port):
    """Property: two independent instances with the same secret agree on
    every flow, for every quota fraction — the verdict depends on nothing
    but (packet, quota, secret)."""
    packet = make_packet(src_ip="10.9.9.9", src_port=seed_port)
    a = AuditableRateLimitFilter("fixed-secret")
    a.install_quota(quota(fraction=fraction))
    b = AuditableRateLimitFilter("fixed-secret")
    b.install_quota(quota(fraction=fraction))
    assert a.admit(packet) == b.admit(packet)
