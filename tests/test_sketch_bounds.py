"""Count-min (ε, δ) bound utilities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.bounds import ErrorBound, dimensions_for, paper_bound
from repro.sketch.countmin import CountMinSketch


def test_paper_configuration_guarantees():
    bound = paper_bound()
    assert bound.width == 64 * 1024 and bound.depth == 2
    # epsilon = e / 65536 ~ 4.1e-5: over a 1 M-packet round, estimates
    # exceed truth by at most ~41 packets w.h.p.
    assert bound.max_overcount(1_000_000) == pytest.approx(41.5, rel=0.05)
    assert bound.delta == pytest.approx(math.exp(-2))
    assert bound.memory_bytes() == 64 * 1024 * 2 * 8


def test_dimensions_for_targets():
    bound = dimensions_for(epsilon=0.001, delta=0.01)
    assert bound.epsilon <= 0.001
    assert bound.delta <= 0.01
    assert bound.width == math.ceil(math.e / 0.001)
    assert bound.depth == math.ceil(math.log(100))


def test_dimensions_validation():
    for eps, delta in ((0.0, 0.1), (1.5, 0.1), (0.1, 0.0), (0.1, 1.0)):
        with pytest.raises(ValueError):
            dimensions_for(eps, delta)
    with pytest.raises(ValueError):
        paper_bound().max_overcount(-1)


@settings(max_examples=20, deadline=None)
@given(
    total=st.integers(min_value=50, max_value=400),
    seed=st.integers(min_value=0, max_value=20),
)
def test_bound_holds_empirically(total, seed):
    """On random streams, the ε·N overcount bound holds for (nearly) all
    keys — sampled at a deliberately narrow width to make errors likely."""
    import random

    rng = random.Random(seed)
    bound = ErrorBound(width=64, depth=4)
    sketch = CountMinSketch(depth=bound.depth, width=bound.width, family_seed="b")
    truth = {}
    for _ in range(total):
        key = f"k{rng.randrange(100)}".encode()
        truth[key] = truth.get(key, 0) + 1
        sketch.update(key)
    limit = bound.max_overcount(total)
    violations = sum(
        1 for key, count in truth.items()
        if sketch.estimate(key) - count > limit
    )
    # delta = e^-4 ~ 1.8% per key; allow a generous empirical margin.
    assert violations <= max(2, 0.1 * len(truth))
