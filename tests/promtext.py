"""A small Prometheus text-exposition (version 0.0.4) parser.

Shared between the test suite (exposition regression tests, telemetry
endpoint tests) and the CI serve-smoke step, which scrapes the live
``/metrics`` endpoint and asserts the payload round-trips through this
parser.  Import as ``tests.promtext`` with the repo root on ``PYTHONPATH``,
or run as a script::

    python -m tests.promtext bench-out/telemetry/metrics.prom

The parser is deliberately strict: unknown escape sequences, malformed
label bodies, junk after the value, or an unknown ``# TYPE`` all raise
:class:`ValueError` with the offending line number — a scrape that "mostly
parses" is exactly the regression this exists to catch.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, List, NamedTuple, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


class Sample(NamedTuple):
    name: str
    labels: Tuple[Tuple[str, str], ...]  # insertion order, as exposed
    value: float


class Exposition(NamedTuple):
    samples: List[Sample]
    types: Dict[str, str]  # family name -> counter|gauge|histogram|...
    helps: Dict[str, str]

    def value(self, name: str, **labels: str) -> float:
        """The single sample matching ``name`` + exact label set."""
        want = tuple(sorted(labels.items()))
        hits = [
            s
            for s in self.samples
            if s.name == name and tuple(sorted(s.labels)) == want
        ]
        if len(hits) != 1:
            raise KeyError(
                f"{name}{dict(labels)}: {len(hits)} matching samples"
            )
        return hits[0].value


def _parse_value(token: str, lineno: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {token!r}")


def _parse_labels(body: str, lineno: int) -> Tuple[Tuple[str, str], ...]:
    """Parse the inside of a ``{...}`` label body (escape-aware)."""
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq == -1 or not _NAME_RE.match(body[i:eq]):
            raise ValueError(f"line {lineno}: bad label name in {body!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        chars: List[str] = []
        j = eq + 2
        while True:
            if j >= len(body):
                raise ValueError(f"line {lineno}: unterminated label value")
            ch = body[j]
            if ch == "\\":
                if j + 1 >= len(body) or body[j + 1] not in _ESCAPES:
                    raise ValueError(
                        f"line {lineno}: unknown escape in label value"
                    )
                chars.append(_ESCAPES[body[j + 1]])
                j += 2
            elif ch == '"':
                break
            elif ch == "\n":
                raise ValueError(f"line {lineno}: raw newline in label value")
            else:
                chars.append(ch)
                j += 1
        labels.append((body[i:eq], "".join(chars)))
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"line {lineno}: expected ',' between labels")
            i += 1
    return tuple(labels)


def parse(text: str) -> Exposition:
    """Parse one exposition document; raises ValueError on any bad line."""
    samples: List[Sample] = []
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad HELP metric name")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            if not _NAME_RE.match(name) or kind not in _TYPES:
                raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        brace = line.find("{")
        if brace != -1 and brace < line.find(" "):
            end = line.rfind("}")
            if end < brace:
                raise ValueError(f"line {lineno}: unbalanced label braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1 : end], lineno)
            rest = line[end + 1 :]
        else:
            name, _, rest = line.partition(" ")
            labels = ()
        if not _NAME_RE.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        tokens = rest.split()
        if not tokens or len(tokens) > 2:  # optional trailing timestamp
            raise ValueError(f"line {lineno}: expected '<value> [timestamp]'")
        samples.append(Sample(name, labels, _parse_value(tokens[0], lineno)))
    return Exposition(samples, types, helps)


def _main(argv: List[str]) -> int:
    status = 0
    for path in argv or ["-"]:
        text = (
            sys.stdin.read()
            if path == "-"
            else open(path, encoding="utf-8").read()
        )
        exposition = parse(text)
        print(
            f"{path}: {len(exposition.samples)} samples, "
            f"{len(exposition.types)} typed families"
        )
        if not exposition.samples:
            print(f"{path}: no samples", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
