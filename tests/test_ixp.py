"""IXP membership, ranking, path-transit tests."""

import pytest

from repro.interdomain.ixp import (
    IXP,
    membership_index,
    path_transits_ixp,
    top_ixps_by_region,
    transited_ixps,
)
from repro.interdomain.topology import ASGraph, Tier


def ixp(ixp_id="x", region="Europe", members=()):
    return IXP(ixp_id=ixp_id, name=ixp_id.upper(), region=region,
               members=set(members))


def test_member_count_and_str():
    x = ixp(members=(1, 2, 3))
    assert x.member_count == 3
    assert "3 members" in str(x)


def test_top_ixps_by_region_selects_n_per_region():
    ixps = [
        ixp("e1", "Europe", range(10)),
        ixp("e2", "Europe", range(5)),
        ixp("a1", "Africa", range(7)),
        ixp("a2", "Africa", range(2)),
    ]
    top1 = top_ixps_by_region(ixps, 1)
    assert {x.ixp_id for x in top1} == {"e1", "a1"}
    top2 = top_ixps_by_region(ixps, 2)
    assert len(top2) == 4
    with pytest.raises(ValueError):
        top_ixps_by_region(ixps, 0)


def test_top_ixps_ties_break_on_id():
    ixps = [ixp("b", members=(1,)), ixp("a", members=(2,))]
    assert top_ixps_by_region(ixps, 1)[0].ixp_id == "a"


def test_path_transits_membership_definition():
    # Paper: "two consecutive ASes that are the members of the IXP".
    x = ixp(members=(2, 3))
    assert path_transits_ixp((1, 2, 3, 4), x)
    assert not path_transits_ixp((1, 2, 4), x)  # 2 and 4 not consecutive members
    assert not path_transits_ixp((2,), x)  # single node, no hop


def test_path_transits_strict_peering_mode():
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn, "E", Tier.TIER2)
    g.add_p2p(1, 2, ixp_id="x")
    g.add_p2c(2, 3)
    x = ixp(members=(1, 2, 3))
    # Membership test says yes for hop (2,3); strict mode says no (that hop
    # is a private transit link, not the IXP fabric).
    assert path_transits_ixp((2, 3), x)
    assert not path_transits_ixp((2, 3), x, graph=g, require_peering_at_ixp=True)
    assert path_transits_ixp((1, 2), x, graph=g, require_peering_at_ixp=True)
    with pytest.raises(ValueError):
        path_transits_ixp((1, 2), x, require_peering_at_ixp=True)


def test_transited_ixps_bulk():
    ixps = [ixp("x", members=(1, 2)), ixp("y", members=(2, 3)), ixp("z", members=(9,))]
    index = membership_index(ixps)
    assert transited_ixps((1, 2, 3), index) == {"x", "y"}
    assert transited_ixps((3, 1), index) == set()
    assert transited_ixps((1,), index) == set()


def test_membership_index():
    ixps = [ixp("x", members=(1, 2)), ixp("y", members=(2,))]
    index = membership_index(ixps)
    assert index == {1: {"x"}, 2: {"x", "y"}}
