"""Deployment-point baselines (SENSS-style transit ISPs vs VIF IXPs)."""

import pytest

from repro.errors import ConfigurationError
from repro.interdomain.attack_sources import dns_resolver_population
from repro.interdomain.baselines import (
    customer_cone_sizes,
    isp_deployment_coverage,
    top_transit_ases,
)
from repro.interdomain.simulation import choose_victims
from repro.interdomain.synthetic import SyntheticInternetConfig, generate_internet
from repro.interdomain.topology import ASGraph, Tier

SMALL = SyntheticInternetConfig(
    tier1_per_region=1, tier2_per_region=5, stubs_per_region=25, seed=8
)


@pytest.fixture(scope="module")
def world():
    graph, _ = generate_internet(SMALL)
    victims = choose_victims(graph, 15)
    sources = dns_resolver_population(graph, total_resolvers=2000)
    return graph, victims, sources


def test_customer_cone_simple_chain():
    g = ASGraph()
    g.add_as(1, "E", Tier.TIER1)
    g.add_as(2, "E", Tier.TIER2)
    g.add_as(3, "E", Tier.STUB)
    g.add_p2c(1, 2)
    g.add_p2c(2, 3)
    sizes = customer_cone_sizes(g)
    assert sizes == {1: 3, 2: 2, 3: 1}


def test_cone_handles_multihoming_without_double_count():
    g = ASGraph()
    g.add_as(1, "E", Tier.TIER1)
    g.add_as(2, "E", Tier.TIER2)
    g.add_as(3, "E", Tier.TIER2)
    g.add_as(4, "E", Tier.STUB)
    g.add_p2c(1, 2)
    g.add_p2c(1, 3)
    g.add_p2c(2, 4)
    g.add_p2c(3, 4)  # multihomed stub
    assert customer_cone_sizes(g)[1] == 4


def test_top_transit_ases_are_transit_and_ranked(world):
    graph, _, _ = world
    top = top_transit_ases(graph, 8)
    assert len(top) == 8
    sizes = customer_cone_sizes(graph)
    assert all(graph.nodes[a].tier is not Tier.STUB for a in top)
    assert [sizes[a] for a in top] == sorted(
        (sizes[a] for a in top), reverse=True
    )
    with pytest.raises(ConfigurationError):
        top_transit_ases(graph, 0)


def test_isp_coverage_monotone_in_deployment_size(world):
    graph, victims, sources = world
    top = top_transit_ases(graph, 5)
    result = isp_deployment_coverage(
        graph, top, victims, sources, cumulative_levels=(1, 2, 3, 4, 5)
    )
    medians = [result.median(level) for level in (1, 2, 3, 4, 5)]
    for lo, hi in zip(medians, medians[1:]):
        assert hi >= lo - 1e-12


def test_isp_coverage_endpoints_excluded(world):
    """Deploying at the victim's own AS handles nothing: endpoints are not
    in-network filtering points."""
    graph, victims, sources = world
    result = isp_deployment_coverage(
        graph, [victims[0]], [victims[0]], sources, cumulative_levels=(1,)
    )
    assert all(r == 0.0 for r in result.ratios_by_level[1])


def test_isp_coverage_validation(world):
    graph, victims, sources = world
    with pytest.raises(ConfigurationError):
        isp_deployment_coverage(graph, [], victims, sources)
    with pytest.raises(ConfigurationError):
        isp_deployment_coverage(graph, [1], [], sources)
    with pytest.raises(ConfigurationError):
        isp_deployment_coverage(graph, [1], victims, {})


def test_all_transit_deployment_is_near_total(world):
    """Deploying at every transit AS covers essentially all sources (any
    multi-hop path traverses some transit AS)."""
    graph, victims, sources = world
    every_transit = [
        a for a in graph.nodes if graph.nodes[a].tier is not Tier.STUB
    ]
    result = isp_deployment_coverage(
        graph,
        every_transit,
        victims,
        sources,
        cumulative_levels=(len(every_transit),),
    )
    ratios = result.ratios_by_level[len(every_transit)]
    assert min(ratios) > 0.9
