"""The structured audit-event journal."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES, EventJournal, read_jsonl


@pytest.fixture
def journal():
    """A fresh enabled journal installed as the process default."""
    fresh = EventJournal(enabled=True, session_id="victim.example")
    previous = obs.set_journal(fresh)
    yield fresh
    obs.set_journal(previous)


def test_emit_assigns_monotonic_seq_and_logical_ts(journal):
    a = journal.emit("round_start", round_id=1)
    b = journal.emit("sketch_audit", round_id=1, bins_flagged=0)
    assert (a.seq, b.seq) == (1, 2)
    # No clock injected: the logical clock makes ts deterministic (ts == seq).
    assert (a.ts, b.ts) == (1.0, 2.0)
    assert a.session_id == "victim.example"


def test_injectable_clock_overrides_logical_ts():
    ticks = iter([10.5, 11.5])
    j = EventJournal(time_source=lambda: next(ticks), enabled=True)
    assert j.emit("round_start").ts == 10.5
    assert j.emit("round_start").ts == 11.5


def test_unknown_event_type_rejected(journal):
    with pytest.raises(ValueError, match="unknown event type"):
        journal.emit("made_up_type")
    assert "made_up_type" not in EVENT_TYPES


def test_disabled_journal_is_a_noop():
    j = EventJournal(enabled=False)
    assert j.emit("round_start") is None
    assert len(j) == 0


def test_ambient_round_inherited_and_overridable(journal):
    journal.set_round(4)
    ambient = journal.emit("failover", relaunched_slots=[0])
    explicit = journal.emit("fault_injected", round_id=9, kind="crash")
    assert ambient.round_id == 4
    assert explicit.round_id == 9


def test_of_type_filters_in_order(journal):
    journal.emit("round_start", round_id=1)
    journal.emit("sketch_audit", round_id=1)
    journal.emit("round_start", round_id=2)
    assert [e.round_id for e in journal.of_type("round_start")] == [1, 2]


def test_jsonl_round_trip(journal, tmp_path):
    journal.set_round(3)
    journal.emit("round_start", started_at_s=0.0)
    journal.emit("alert", kind="bypass-suspected", detail="missing=4")
    path = tmp_path / "run.journal.jsonl"
    journal.write_jsonl(str(path))

    docs = read_jsonl(str(path))
    assert len(docs) == 2
    assert all(d["schema"] == EVENT_SCHEMA for d in docs)
    assert docs[0]["type"] == "round_start"
    assert docs[1]["payload"]["kind"] == "bypass-suspected"
    assert docs[1]["round"] == 3
    # read_jsonl also accepts an iterable of lines.
    assert read_jsonl(journal.to_jsonl().splitlines()) == docs


def test_jsonl_is_byte_stable(journal):
    journal.emit("round_start", round_id=1, z_last=1, a_first=2)
    line = journal.to_jsonl()
    # Compact separators, keys sorted — byte-stable across runs.
    assert line == (
        '{"payload":{"a_first":2,"z_last":1},"round":1,'
        '"schema":"vif-events-v1","seq":1,"session":"victim.example",'
        '"ts":1.0,"type":"round_start"}\n'
    )


def test_read_jsonl_rejects_foreign_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema":"not-vif","seq":1}\n')
    with pytest.raises(ValueError, match="schema"):
        read_jsonl(str(path))
    path.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_jsonl(str(path))


def test_clear_resets_seq_and_round(journal):
    journal.set_round(2)
    journal.emit("round_start")
    journal.clear()
    assert len(journal) == 0
    assert journal.current_round is None
    assert journal.emit("round_start").seq == 1


def test_module_level_toggle_round_trips():
    previous = obs.set_journaling(True)
    try:
        assert obs.journaling_enabled()
    finally:
        obs.set_journaling(previous)
    assert obs.journaling_enabled() == previous
