"""The structured audit-event journal."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    EventJournal,
    JsonlSink,
    read_jsonl,
)


@pytest.fixture
def journal():
    """A fresh enabled journal installed as the process default."""
    fresh = EventJournal(enabled=True, session_id="victim.example")
    previous = obs.set_journal(fresh)
    yield fresh
    obs.set_journal(previous)


def test_emit_assigns_monotonic_seq_and_logical_ts(journal):
    a = journal.emit("round_start", round_id=1)
    b = journal.emit("sketch_audit", round_id=1, bins_flagged=0)
    assert (a.seq, b.seq) == (1, 2)
    # No clock injected: the logical clock makes ts deterministic (ts == seq).
    assert (a.ts, b.ts) == (1.0, 2.0)
    assert a.session_id == "victim.example"


def test_injectable_clock_overrides_logical_ts():
    ticks = iter([10.5, 11.5])
    j = EventJournal(time_source=lambda: next(ticks), enabled=True)
    assert j.emit("round_start").ts == 10.5
    assert j.emit("round_start").ts == 11.5


def test_unknown_event_type_rejected(journal):
    with pytest.raises(ValueError, match="unknown event type"):
        journal.emit("made_up_type")
    assert "made_up_type" not in EVENT_TYPES


def test_disabled_journal_is_a_noop():
    j = EventJournal(enabled=False)
    assert j.emit("round_start") is None
    assert len(j) == 0


def test_ambient_round_inherited_and_overridable(journal):
    journal.set_round(4)
    ambient = journal.emit("failover", relaunched_slots=[0])
    explicit = journal.emit("fault_injected", round_id=9, kind="crash")
    assert ambient.round_id == 4
    assert explicit.round_id == 9


def test_of_type_filters_in_order(journal):
    journal.emit("round_start", round_id=1)
    journal.emit("sketch_audit", round_id=1)
    journal.emit("round_start", round_id=2)
    assert [e.round_id for e in journal.of_type("round_start")] == [1, 2]


def test_jsonl_round_trip(journal, tmp_path):
    journal.set_round(3)
    journal.emit("round_start", started_at_s=0.0)
    journal.emit("alert", kind="bypass-suspected", detail="missing=4")
    path = tmp_path / "run.journal.jsonl"
    journal.write_jsonl(str(path))

    docs = read_jsonl(str(path))
    assert len(docs) == 2
    assert all(d["schema"] == EVENT_SCHEMA for d in docs)
    assert docs[0]["type"] == "round_start"
    assert docs[1]["payload"]["kind"] == "bypass-suspected"
    assert docs[1]["round"] == 3
    # read_jsonl also accepts an iterable of lines.
    assert read_jsonl(journal.to_jsonl().splitlines()) == docs


def test_jsonl_is_byte_stable(journal):
    journal.emit("round_start", round_id=1, z_last=1, a_first=2)
    line = journal.to_jsonl()
    # Compact separators, keys sorted — byte-stable across runs.
    assert line == (
        '{"payload":{"a_first":2,"z_last":1},"round":1,'
        '"schema":"vif-events-v1","seq":1,"session":"victim.example",'
        '"ts":1.0,"type":"round_start"}\n'
    )


def test_read_jsonl_rejects_foreign_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema":"not-vif","seq":1}\n')
    with pytest.raises(ValueError, match="schema"):
        read_jsonl(str(path))
    path.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_jsonl(str(path))


def test_clear_resets_seq_and_round(journal):
    journal.set_round(2)
    journal.emit("round_start")
    journal.clear()
    assert len(journal) == 0
    assert journal.current_round is None
    assert journal.emit("round_start").seq == 1


def test_module_level_toggle_round_trips():
    previous = obs.set_journaling(True)
    try:
        assert obs.journaling_enabled()
    finally:
        obs.set_journaling(previous)
    assert obs.journaling_enabled() == previous


# -- retention bound (max_events) ---------------------------------------------


class TestRetentionBound:
    def test_oldest_events_evicted_past_cap(self):
        j = EventJournal(enabled=True, max_events=3)
        for r in range(5):
            j.emit("round_start", round_id=r)
        assert len(j) == 3
        assert [e.round_id for e in j.events] == [2, 3, 4]
        assert j.evicted_events == 2
        # Sequence numbers keep counting across evictions.
        assert j.emit("round_start").seq == 6

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="max_events"):
            EventJournal(max_events=0)

    def test_clear_resets_eviction_counter(self):
        j = EventJournal(enabled=True, max_events=1)
        j.emit("round_start")
        j.emit("round_start")
        assert j.evicted_events == 1
        j.clear()
        assert j.evicted_events == 0

    def test_golden_jsonl_is_byte_identical_under_cap(self):
        """Retained events serialize exactly as in an uncapped journal."""
        capped = EventJournal(enabled=True, session_id="v", max_events=2)
        plain = EventJournal(enabled=True, session_id="v")
        for j in (capped, plain):
            for r in range(4):
                j.emit("round_start", round_id=r)
        # The capped journal holds the *suffix*; those lines must be
        # byte-identical to the same lines of the uncapped journal.
        assert capped.to_jsonl() == "".join(
            plain.to_jsonl().splitlines(keepends=True)[-2:]
        )


# -- streaming sink with rotation ---------------------------------------------


class TestJsonlSink:
    def test_sink_streams_every_event_despite_cap(self, tmp_path):
        path = tmp_path / "serve.journal.jsonl"
        sink = JsonlSink(str(path))
        j = EventJournal(enabled=True, max_events=2, sink=sink)
        for r in range(6):
            j.emit("round_start", round_id=r)
        sink.close()
        docs = read_jsonl(str(path))
        # In-memory kept 2; the sink saw all 6.
        assert len(j) == 2 and len(docs) == 6
        assert [d["round"] for d in docs] == list(range(6))

    def test_rotation_shifts_generations(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # Lines are ~100 bytes; force a rotation every ~2 lines.
        sink = JsonlSink(str(path), max_bytes=250, max_files=2)
        j = EventJournal(enabled=True, sink=sink)
        for r in range(8):
            j.emit("round_start", round_id=r)
        sink.close()
        assert sink.rotations >= 2
        files = sink.files()
        assert files[0] == str(path)
        assert len(files) <= 1 + sink.max_files
        # Every generation is independently valid JSONL, newest first.
        rounds = []
        for f in reversed(files):
            rounds.extend(d["round"] for d in read_jsonl(f))
        # Oldest generations may have been deleted; the tail must survive
        # in order and include the most recent event.
        assert rounds == sorted(rounds)
        assert rounds[-1] == 7

    def test_sink_appends_across_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = JsonlSink(str(path))
        j1 = EventJournal(enabled=True, sink=first)
        j1.emit("round_start", round_id=0)
        first.close()
        second = JsonlSink(str(path))
        j2 = EventJournal(enabled=True, sink=second)
        j2.emit("round_start", round_id=1)
        second.close()
        assert [d["round"] for d in read_jsonl(str(path))] == [0, 1]

    def test_sink_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError, match="max_files"):
            JsonlSink(str(tmp_path / "x"), max_files=-1)
