"""Hash families."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.hashing import HashFamily


def test_indexes_in_range():
    family = HashFamily(depth=3, width=100)
    for key in (b"a", "text", b"\x00\xff"):
        idxs = family.indexes(key)
        assert len(idxs) == 3
        assert all(0 <= i < 100 for i in idxs)


def test_same_seed_same_indexes():
    a = HashFamily(2, 1024, "seed")
    b = HashFamily(2, 1024, "seed")
    assert a.indexes(b"key") == b.indexes(b"key")


def test_different_seed_different_family():
    a = HashFamily(2, 1 << 20, "s1")
    b = HashFamily(2, 1 << 20, "s2")
    assert a.indexes(b"key") != b.indexes(b"key")
    assert not a.compatible_with(b)


def test_compatible_with():
    a = HashFamily(2, 64, "s")
    assert a.compatible_with(HashFamily(2, 64, "s"))
    assert not a.compatible_with(HashFamily(3, 64, "s"))
    assert not a.compatible_with(HashFamily(2, 65, "s"))


def test_validation():
    with pytest.raises(ValueError):
        HashFamily(0, 64)
    with pytest.raises(ValueError):
        HashFamily(2, 0)


@given(st.binary(min_size=1, max_size=32))
def test_rows_are_independent(key):
    """Distinct rows rarely agree — sampled check over random keys."""
    family = HashFamily(2, 1 << 30, "vif")
    i0, i1 = family.indexes(key)
    # With a 2^30 range, row collision for the same key is ~1e-9.
    assert i0 != i1 or key == b""


def test_str_and_bytes_keys_equivalent():
    family = HashFamily(2, 1024, "s")
    assert family.indexes("abc") == family.indexes(b"abc")
