"""Packets and five-tuples."""

import pytest

from repro.dataplane.packet import FiveTuple, Packet, Protocol


def five_tuple(**kw) -> FiveTuple:
    base = dict(
        src_ip="10.0.0.1",
        dst_ip="203.0.113.1",
        src_port=1234,
        dst_port=80,
        protocol=Protocol.TCP,
    )
    base.update(kw)
    return FiveTuple(**base)


def test_five_tuple_validation():
    with pytest.raises(ValueError):
        five_tuple(src_ip="not-an-ip")
    with pytest.raises(ValueError):
        five_tuple(src_port=-1)
    with pytest.raises(ValueError):
        five_tuple(dst_port=70000)


def test_five_tuple_key_is_canonical_and_distinct():
    a = five_tuple()
    b = five_tuple(src_port=1235)
    assert a.key() == five_tuple().key()
    assert a.key() != b.key()
    assert a.src_ip_key() == b"10.0.0.1"


def test_five_tuple_reversed():
    ft = five_tuple()
    rev = ft.reversed()
    assert rev.src_ip == ft.dst_ip and rev.dst_port == ft.src_port
    assert rev.reversed() == ft


def test_five_tuple_is_hashable_and_ordered():
    s = {five_tuple(), five_tuple(), five_tuple(src_port=9)}
    assert len(s) == 2
    assert sorted(s)  # order= on the dataclass


def test_five_tuple_str():
    assert "TCP 10.0.0.1:1234 -> 203.0.113.1:80" == str(five_tuple())


def test_packet_size_bounds():
    with pytest.raises(ValueError):
        Packet(five_tuple=five_tuple(), size=63)
    with pytest.raises(ValueError):
        Packet(five_tuple=five_tuple(), size=10_000)
    Packet(five_tuple=five_tuple(), size=64)
    Packet(five_tuple=five_tuple(), size=9216)


def test_packet_ids_unique_and_clone_gets_new_id():
    a = Packet(five_tuple=five_tuple())
    b = Packet(five_tuple=five_tuple())
    assert a.packet_id != b.packet_id
    c = a.clone()
    assert c.packet_id != a.packet_id
    assert c.five_tuple == a.five_tuple and c.size == a.size


def test_packet_accessors():
    p = Packet(five_tuple=five_tuple(), ingress_as=64500)
    assert p.src_ip == "10.0.0.1"
    assert p.dst_ip == "203.0.113.1"
    assert p.ingress_as == 64500
