"""Scale-out feasibility validation (the 500 Gb/s / 150 K rules claim)."""

import pytest

from repro.deploy.scaleout import ScaleOutPlanner
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def planner():
    return ScaleOutPlanner()


def test_minimum_fleet_bandwidth_bound(planner):
    assert planner.minimum_fleet(total_gbps=500, num_rules=100) == 50
    assert planner.minimum_fleet(total_gbps=25, num_rules=100) == 3


def test_minimum_fleet_rule_bound(planner):
    # ~3,000 rules per enclave -> 150 K rules need ~49-50 enclaves even at
    # negligible bandwidth.
    minimum = planner.minimum_fleet(total_gbps=1, num_rules=150_000)
    assert 45 <= minimum <= 55


def test_undersized_fleet_rejected_with_reason(planner):
    bw = planner.assess(10, total_gbps=500, num_rules=100, solve=False)
    assert not bw.feasible and "bandwidth" in bw.reason
    rules = planner.assess(10, total_gbps=10, num_rules=150_000, solve=False)
    assert not rules.feasible and "rules" in rules.reason


def test_paper_headline_fleet_is_feasible(planner):
    """50 Gb/s + 15 K rules on 6 enclaves — the headline claim at 1/10
    scale (full scale runs in the scale-out benchmark)."""
    assessment = planner.assess(6, total_gbps=50, num_rules=15_000)
    assert assessment.feasible
    assert assessment.allocation is not None
    assert len(assessment.allocation.assignments) <= 6
    assert assessment.peak_bandwidth_utilization <= 1.0
    assert assessment.peak_rule_utilization <= 1.0


def test_extra_headroom_lowers_peak_load(planner):
    tight = planner.assess(6, total_gbps=50, num_rules=2_000)
    roomy = planner.assess(9, total_gbps=50, num_rules=2_000)
    assert tight.feasible and roomy.feasible
    assert roomy.peak_bandwidth_utilization <= tight.peak_bandwidth_utilization + 1e-9


def test_sweep_marks_feasibility_boundary(planner):
    sweep = planner.sweep([2, 4, 6, 8], total_gbps=50, num_rules=2_000)
    feasibility = [a.feasible for a in sweep]
    assert feasibility == [False, False, True, True]
    # Feasible entries carry utilization; infeasible carry a reason.
    assert sweep[0].reason and sweep[2].peak_bandwidth_utilization > 0


def test_bounds_only_mode_skips_solving(planner):
    assessment = planner.assess(6, total_gbps=50, num_rules=2_000, solve=False)
    assert assessment.feasible
    assert assessment.allocation is None


def test_validation(planner):
    with pytest.raises(ConfigurationError):
        planner.assess(0, total_gbps=10, num_rules=10)
    with pytest.raises(ConfigurationError):
        planner.minimum_fleet(0, 10)
    with pytest.raises(ConfigurationError):
        ScaleOutPlanner(enclave_bandwidth=0)


def test_assessment_row_rendering(planner):
    feasible = planner.assess(6, total_gbps=50, num_rules=2_000)
    row = feasible.as_row()
    assert row[0] == 6 and row[1] == "yes"
    infeasible = planner.assess(1, total_gbps=50, num_rules=2_000, solve=False)
    assert infeasible.as_row()[1] == "no"
