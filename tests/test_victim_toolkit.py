"""Victim-side attack detection and rule synthesis."""

import pytest

from repro.adversary import dns_amplification_flows, mirai_flood_flows
from repro.core.rules import RPKIRegistry
from repro.dataplane.packet import Protocol
from repro.errors import ConfigurationError
from repro.victim import AttackDetector, RuleSynthesizer
from tests.conftest import VICTIM, VICTIM_PREFIX, make_packet

CAPACITY = 1e6  # 1 Mb/s victim uplink, easy to overload in tests


def detector(**kw):
    return AttackDetector(capacity_bps=CAPACITY, **kw)


def flood_packets(count=200, size=1024):
    flows = dns_amplification_flows(count, packet_size=size)
    return [flow.make_packet() for flow in flows]


# -- detection ---------------------------------------------------------------


def test_quiet_traffic_is_not_an_attack():
    det = detector()
    det.observe_many([make_packet(size=200) for _ in range(5)])
    assessment = det.analyze(window_s=10.0)
    assert not assessment.is_attack
    assert assessment.total_rate_bps == pytest.approx(5 * 200 * 8 / 10)


def test_flood_is_detected_with_signatures():
    det = detector()
    det.observe_many(flood_packets(300))
    assessment = det.analyze(window_s=1.0)
    assert assessment.is_attack
    assert assessment.overload_factor > 1.0
    assert assessment.signatures
    top = assessment.signatures[0]
    assert top.protocol is Protocol.UDP
    assert top.src_port == 53  # the reflection fingerprint is pinned
    assert "UDP src-port 53" in top.describe()


def test_port_not_pinned_when_spread():
    det = detector()
    # Many flows in ONE source group, each from a different ephemeral port.
    det.observe_many(
        [make_packet(src_ip=f"10.1.{i}.1", src_port=20000 + i, size=1500)
         for i in range(50)]
    )
    assessment = det.analyze(window_s=0.001)
    assert len(assessment.signatures) == 1
    assert assessment.signatures[0].src_port is None


def test_signatures_ranked_by_rate():
    det = detector()
    det.observe_many(flood_packets(100, size=1500))
    det.observe(make_packet(size=64))
    rates = [s.rate_bps for s in det.analyze(1.0).signatures]
    assert rates == sorted(rates, reverse=True)


def test_reset_clears_window():
    det = detector()
    det.observe_many(flood_packets(50))
    det.reset()
    assert not det.analyze(1.0).is_attack


def test_detector_validation():
    with pytest.raises(ConfigurationError):
        AttackDetector(capacity_bps=0)
    with pytest.raises(ConfigurationError):
        AttackDetector(capacity_bps=1.0, group_prefix_len=40)
    with pytest.raises(ConfigurationError):
        AttackDetector(capacity_bps=1.0, port_dominance=0.3)
    with pytest.raises(ConfigurationError):
        detector().analyze(0)


# -- synthesis -----------------------------------------------------------------


def synthesizer(**kw):
    return RuleSynthesizer(VICTIM_PREFIX, VICTIM, **kw)


def test_no_rules_without_an_attack():
    det = detector()
    det.observe(make_packet())
    assert synthesizer().synthesize(det.analyze(10.0)) == []


def test_synthesized_rules_pass_rpki_and_cover_the_flood():
    det = detector()
    packets = flood_packets(300)
    det.observe_many(packets)
    rules = synthesizer().synthesize(det.analyze(1.0))
    assert rules
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    rpki.validate_rules(rules)  # no raise: ready to submit as-is
    # Every flood packet matches some synthesized rule.
    from repro.core.rules import RuleSet

    ruleset = RuleSet(rules)
    matched = sum(1 for p in packets if ruleset.match(p.five_tuple))
    assert matched == len(packets)


def test_admitted_rate_respects_budget():
    det = detector()
    det.observe_many(flood_packets(400, size=1500))
    assessment = det.analyze(1.0)
    budget = CAPACITY
    rules = synthesizer(min_admit_fraction=0.0).synthesize(
        assessment, budget_bps=budget
    )
    admitted = sum(r.rate_bps * (r.p_allow or 0.0) for r in rules)
    assert admitted <= budget * 1.01


def test_light_signatures_fully_admitted():
    det = detector()
    det.observe_many(flood_packets(200, size=1500))  # heavy UDP flood
    det.observe_many(
        [make_packet(src_ip="192.0.2.7", size=64) for _ in range(3)]
    )  # a whisper of TCP
    rules = synthesizer(min_rule_rate_bps=0.0).synthesize(det.analyze(1.0))
    tcp_rules = [
        r for r in rules if r.pattern.protocol is Protocol.TCP
    ]
    assert tcp_rules and all(r.p_allow == pytest.approx(1.0) for r in tcp_rules)


def test_min_admit_fraction_keeps_a_trickle():
    det = detector()
    det.observe_many(flood_packets(400, size=1500))
    rules = synthesizer(min_admit_fraction=0.05).synthesize(
        det.analyze(1.0), budget_bps=1.0  # essentially zero budget
    )
    assert rules
    assert all(r.p_allow >= 0.05 for r in rules)


def test_max_rules_cap():
    det = detector(group_prefix_len=32)  # one group per resolver
    det.observe_many(flood_packets(300))
    rules = synthesizer().synthesize(det.analyze(1.0), max_rules=10)
    assert len(rules) == 10


def test_rule_ids_sequential_from_start():
    det = detector()
    det.observe_many(flood_packets(100))
    rules = synthesizer().synthesize(det.analyze(1.0), start_rule_id=500)
    assert [r.rule_id for r in rules] == list(
        range(500, 500 + len(rules))
    )


def test_synthesizer_validation():
    with pytest.raises(ConfigurationError):
        RuleSynthesizer("", VICTIM)
    with pytest.raises(ConfigurationError):
        RuleSynthesizer(VICTIM_PREFIX, VICTIM, min_admit_fraction=2.0)
    det = detector()
    det.observe_many(flood_packets(50))
    with pytest.raises(ConfigurationError):
        synthesizer().synthesize(det.analyze(1.0), budget_bps=0)
    with pytest.raises(ConfigurationError):
        synthesizer().synthesize(det.analyze(1.0), max_rules=0)


def test_end_to_end_detect_synthesize_submit(session, controller):
    """The full victim loop: detect -> synthesize -> submit -> filter."""
    det = detector()
    packets = flood_packets(400, size=1500)  # ~4.8 Mb/s vs 1 Mb/s capacity
    det.observe_many(packets)
    rules = synthesizer().synthesize(det.analyze(1.0))
    session.submit_rules(rules)
    delivered = controller.carry(packets)
    # Max-min shares admit ~1/4.8 of the flood on average.
    assert len(delivered) < 0.4 * len(packets)
    session.observe_delivered(delivered)
    assert session.audit_round().clean
