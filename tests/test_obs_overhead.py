"""Overhead guard: metrics must be observably free when disabled.

Two guarantees, per the observability design:

* enabling timing + tracing changes **no packet-level outcome** — every
  counter and every delivered packet is identical to the disabled run;
* the disabled-path cost is near zero — throughput with full
  instrumentation enabled stays within 10% of the disabled run, measured
  as the median of interleaved disabled/enabled run pairs (single-run
  ratios on a shared host swing by tens of percent in both directions;
  the paired median is robust to both one-off stalls and slow host-wide
  frequency drift, which best-of-N is not).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import obs
from repro.core.enclave_filter import EnclaveBurstFilter, EnclaveFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.nic import NIC
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.pktgen import PacketGenerator
from repro.obs.trace import Tracer
from repro.tee.enclave import Platform

N_PACKETS = 4_000
REPEATS = 3
#: The overhead gate uses a longer workload (amortizes per-run scheduler
#: jitter, which dominates at 4k packets) and a handful of interleaved
#: disabled/enabled pairs.
OVERHEAD_PACKETS = 20_000
OVERHEAD_PAIRS = 5


def _packets(count: int = N_PACKETS):
    flows = PacketGenerator(13).uniform_flows(64, dst_ip="10.1.0.9")
    return [flows[i % len(flows)].make_packet() for i in range(count)]


def _build_pipeline():
    enclave = Platform("overhead").launch(EnclaveFilter(secret="overhead"))
    enclave.ecall(
        "install_rules",
        [
            FilterRule(
                rule_id=i,
                pattern=FlowPattern(dst_prefix=f"10.{i}.0.0/16"),
                action=Action.DROP if i % 2 else Action.ALLOW,
            )
            for i in range(1, 33)
        ],
    )
    return FilterPipeline(
        EnclaveBurstFilter(enclave),
        nic_in=NIC("overhead-in", rx_queue_size=N_PACKETS),
    )


def _run(instrumented: bool):
    """Run the workload; return (best seconds, stats dict, delivered)."""
    prev_timing = obs.set_timing(instrumented)
    prev_tracer = obs.set_tracer(Tracer(enabled=instrumented))
    try:
        best = float("inf")
        stats = None
        delivered = None
        for _ in range(REPEATS):
            pipeline = _build_pipeline()
            packets = _packets()
            start = time.perf_counter()
            out = pipeline.process(packets)
            best = min(best, time.perf_counter() - start)
            stats = pipeline.stats.as_dict()
            delivered = [p.five_tuple for p in out]
        return best, stats, delivered
    finally:
        obs.set_timing(prev_timing)
        obs.set_tracer(prev_tracer)


def test_metrics_change_no_packet_outcome():
    """Instrumentation observes the data path; it must never touch it."""
    _, stats_off, delivered_off = _run(instrumented=False)
    _, stats_on, delivered_on = _run(instrumented=True)
    assert stats_on == stats_off
    assert delivered_on == delivered_off
    assert stats_on["received"] == N_PACKETS


def _timed_run(instrumented: bool) -> float:
    """One workload run under the given instrumentation; returns seconds."""
    prev_timing = obs.set_timing(instrumented)
    prev_tracer = obs.set_tracer(Tracer(enabled=instrumented))
    try:
        pipeline = _build_pipeline()
        packets = _packets(OVERHEAD_PACKETS)
        start = time.perf_counter()
        pipeline.process(packets)
        return time.perf_counter() - start
    finally:
        obs.set_timing(prev_timing)
        obs.set_tracer(prev_tracer)


def test_enabled_overhead_within_ten_percent():
    # Interleave the legs so host-wide drift (thermal, noisy neighbors)
    # hits both sides of each pair; the median pair ratio is the gated
    # estimate.
    ratios = [
        _timed_run(instrumented=False) / _timed_run(instrumented=True)
        for _ in range(OVERHEAD_PAIRS)
    ]
    ratio = statistics.median(ratios)
    assert ratio >= 0.9, (
        f"metrics overhead too high: enabled runs at {ratio:.2%} of "
        f"disabled throughput (pair ratios {[round(r, 3) for r in ratios]})"
    )


def test_timing_off_records_no_latency_observations():
    """With timing off the histograms must not even exist as observations —
    proof the hot path skipped the clock reads entirely."""
    registry = obs.get_registry()
    before = registry.total("vif_pipeline_filter_burst_seconds")
    assert not obs.timing_enabled()
    pipeline = _build_pipeline()
    pipeline.process(_packets())
    assert registry.total("vif_pipeline_filter_burst_seconds") == before


def test_timing_on_records_latency_observations():
    registry = obs.get_registry()
    before_bursts = registry.total("vif_pipeline_filter_burst_seconds")
    before_ecalls = registry.total("vif_tee_ecall_seconds")
    prev = obs.set_timing(True)
    try:
        pipeline = _build_pipeline()
        pipeline.process(_packets())
    finally:
        obs.set_timing(prev)
    assert registry.total("vif_pipeline_filter_burst_seconds") > before_bursts
    assert registry.total("vif_tee_ecall_seconds") > before_ecalls
