"""Enclave memory model (Fig 3b calibration anchors)."""

import pytest

from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.util.units import MB


def test_footprint_linear():
    m = PAPER_MEMORY_MODEL
    assert m.footprint_bytes(0) == m.base_bytes
    assert m.footprint_bytes(1000) - m.footprint_bytes(0) == 1000 * m.bytes_per_rule


def test_fig3b_anchor_150mb_at_10k_rules():
    mb = PAPER_MEMORY_MODEL.footprint_bytes(10_000) / MB
    assert 130 < mb < 160


def test_epc_crossing_between_3k_and_10k():
    m = PAPER_MEMORY_MODEL
    assert not m.exceeds_epc(3000)
    assert m.exceeds_epc(10_000)


def test_rule_capacity_matches_the_3000_knee():
    # The optimizer's per-enclave rule capacity must sit at the Fig 3a knee.
    capacity = PAPER_MEMORY_MODEL.rule_capacity()
    assert 2500 <= capacity <= 3500


def test_rule_capacity_with_custom_budget():
    m = PAPER_MEMORY_MODEL
    assert m.rule_capacity(m.base_bytes) == 0
    assert m.rule_capacity(m.base_bytes + 10 * m.bytes_per_rule) == 10


def test_u_v_aliases():
    m = PAPER_MEMORY_MODEL
    assert m.u == m.bytes_per_rule
    assert m.v == m.base_bytes


def test_footprint_rejects_negative():
    with pytest.raises(ValueError):
        PAPER_MEMORY_MODEL.footprint_bytes(-1)


def test_custom_model():
    m = EnclaveMemoryModel(bytes_per_rule=100, base_bytes=1000,
                           epc_limit_bytes=10_000, performance_budget_bytes=6000)
    assert m.rule_capacity() == 50
    assert m.exceeds_epc(100)
    assert not m.exceeds_epc(10)
