"""Algorithm 1 (greedy rule distribution)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasibleError
from repro.optim.greedy import _assign_bandwidth, greedy_solve
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS, MB


def test_small_instance_feasible():
    p = RuleDistributionProblem(bandwidths=[3 * GBPS, 4 * GBPS, 5 * GBPS])
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []


def test_single_rule():
    p = RuleDistributionProblem(bandwidths=[5 * GBPS])
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []
    assert allocation.rule_replicas(0)


def test_rule_larger_than_one_enclave_is_split():
    # 25 Gb/s on one rule cannot fit one 10 Gb/s enclave: must be split.
    p = RuleDistributionProblem(bandwidths=[25 * GBPS], headroom=0.2)
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []
    assert len(allocation.rule_replicas(0)) >= 3


def test_zero_bandwidth_rules_are_placed():
    p = RuleDistributionProblem(bandwidths=[0.0, 0.0, 1 * GBPS])
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []
    for i in range(3):
        assert allocation.rule_replicas(i), f"rule {i} not placed"


def test_respects_rule_capacity():
    p = RuleDistributionProblem(
        bandwidths=[1000.0] * 30,
        memory_budget=11 * MB,
        bytes_per_rule=1 * MB,
        base_bytes=1 * MB,  # capacity: 10 rules/enclave
        headroom=0.2,
    )
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []
    assert all(len(a) <= 10 for a in allocation.assignments)


def test_lognormal_workload_100g():
    bandwidths = lognormal_bandwidths(500, 100 * GBPS, seed=5)
    p = RuleDistributionProblem(bandwidths=bandwidths)
    allocation = greedy_solve(p)
    assert validate_allocation(allocation) == []
    # Bandwidth balance: the max enclave load is within 2x of the average.
    loads = [allocation.bandwidth_on(j) for j in range(len(allocation.assignments))]
    busy = [l for l in loads if l > 0]
    assert max(busy) <= 2.0 * (sum(busy) / len(busy))


def test_infeasible_single_rule_memory():
    p = RuleDistributionProblem(
        bandwidths=[1.0],
        memory_budget=2 * MB,
        bytes_per_rule=4 * MB,
        base_bytes=1 * MB,
    )
    with pytest.raises(InfeasibleError):
        greedy_solve(p)


def test_deterministic():
    bandwidths = lognormal_bandwidths(100, 20 * GBPS, seed=9)
    p = RuleDistributionProblem(bandwidths=bandwidths)
    a = greedy_solve(p)
    b = greedy_solve(p)
    assert a.assignments == b.assignments


def test_assign_bandwidth_rejects_negative_rule():
    """A negative bandwidth used to be silently discarded (it matched
    neither the positive pool nor the zero list), so the rule vanished
    from the allocation without any error."""
    with pytest.raises(ConfigurationError, match="rule 1"):
        _assign_bandwidth([5.0, -2.0, 3.0], h=10.0, g=100.0, n=2)


def test_assign_bandwidth_rejects_nan_rule():
    with pytest.raises(ConfigurationError, match="invalid bandwidth"):
        _assign_bandwidth([5.0, float("nan")], h=10.0, g=100.0, n=2)


@settings(max_examples=40, deadline=None)
@given(
    bandwidths=st.lists(
        st.floats(min_value=0.0, max_value=15e9), min_size=1, max_size=40
    ),
    headroom=st.floats(min_value=0.0, max_value=0.5),
)
def test_greedy_output_always_feasible(bandwidths, headroom):
    """Property: on any instance, the greedy returns a valid allocation
    (or proves infeasibility by raising)."""
    p = RuleDistributionProblem(bandwidths=bandwidths, headroom=headroom)
    try:
        allocation = greedy_solve(p)
    except InfeasibleError:
        return
    assert validate_allocation(allocation) == []
