"""Host clock and the untrusted enclave clock (paper III-A)."""

import pytest

from repro.tee.clock import HostClock, UntrustedClock


def test_host_clock_advances():
    clock = HostClock()
    clock.advance(5.0)
    assert clock.now() == 5.0
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_honest_feed_tracks_host():
    host = HostClock()
    enclave = UntrustedClock(host)
    host.advance(3.0)
    assert enclave.now() == pytest.approx(3.0)
    assert not enclave.manipulated


def test_slowed_clock():
    """The III-A attack: delaying time responses slows the enclave clock."""
    host = HostClock()
    enclave = UntrustedClock(host)
    enclave.set_rate(0.5)
    host.advance(10.0)
    assert enclave.now() == pytest.approx(5.0)
    assert enclave.manipulated


def test_rate_change_is_not_retroactive():
    host = HostClock()
    enclave = UntrustedClock(host)
    host.advance(10.0)
    enclave.set_rate(0.0)  # freeze via rate
    host.advance(100.0)
    assert enclave.now() == pytest.approx(10.0)


def test_freeze_and_unfreeze():
    host = HostClock()
    enclave = UntrustedClock(host)
    host.advance(2.0)
    enclave.freeze()
    host.advance(50.0)
    assert enclave.now() == pytest.approx(2.0)
    enclave.unfreeze()
    host.advance(1.0)
    assert enclave.now() == pytest.approx(3.0)


def test_unfreeze_without_freeze_is_noop():
    host = HostClock()
    enclave = UntrustedClock(host)
    enclave.unfreeze()
    assert enclave.now() == 0.0


def test_offset_counts_as_manipulation():
    host = HostClock()
    assert UntrustedClock(host, offset=5.0).manipulated


def test_negative_rate_rejected():
    host = HostClock()
    with pytest.raises(ValueError):
        UntrustedClock(host, rate=-1.0)
    enclave = UntrustedClock(host)
    with pytest.raises(ValueError):
        enclave.set_rate(-0.1)
