#!/usr/bin/env python3
"""The Fig 11 study: how many attack sources do a few big IXPs cover?

Generates a synthetic Internet (five regions, Gao-Rexford routing, regional
IXPs with Table-III-like membership skew), places the two attack-source
populations (open DNS resolvers, Mirai bots), samples stub victims, and
reports — per Top-n selection of regional IXPs — the distribution of the
fraction of attack sources whose path to the victim transits a VIF IXP.

Also prints the Table III analogue (top five IXPs per region by members)
and demonstrates the Appendix-B fault-localization test.

Run:  python examples/ixp_coverage_study.py
"""

from repro.interdomain import (
    InboundRouteTester,
    Verdict,
    dns_resolver_population,
    generate_internet,
    ixp_coverage,
    mirai_bot_population,
    route_tree,
    top_ixps_by_region,
)
from repro.interdomain.routing import as_path
from repro.interdomain.simulation import choose_victims, coverage_rows
from repro.util.tables import format_table


def table3(ixps) -> None:
    regions = sorted({ixp.region for ixp in ixps})
    ranked = {
        region: sorted(
            (i for i in ixps if i.region == region),
            key=lambda x: -x.member_count,
        )
        for region in regions
    }
    rows = []
    for rank in range(5):
        rows.append(
            [rank + 1]
            + [
                f"{ranked[r][rank].name} ({ranked[r][rank].member_count})"
                if rank < len(ranked[r])
                else "-"
                for r in regions
            ]
        )
    print(format_table(["rank"] + regions, rows,
                       title="Table III analogue — top regional IXPs (members)"))


def coverage(graph, ixps) -> None:
    victims = choose_victims(graph, 100)
    for label, population in (
        ("vulnerable DNS resolvers", dns_resolver_population(graph)),
        ("Mirai botnet", mirai_bot_population(graph)),
    ):
        result = ixp_coverage(graph, ixps, victims, population)
        print()
        print(format_table(
            ["selection", "p5", "p25", "median", "p75", "p95"],
            coverage_rows(result),
            title=f"Fig 11 — attack sources handled by VIF IXPs ({label})",
        ))


def fault_localization(graph, ixps) -> None:
    # Pick a victim and the filtering IXP's closest big member as egress.
    victim = choose_victims(graph, 1, seed=23)[0]
    ixp = top_ixps_by_region(ixps, 1)[0]
    routes = route_tree(graph, victim)
    egress = next(
        asn for asn in sorted(ixp.members)
        if asn != victim and as_path(routes, asn) and len(as_path(routes, asn)) >= 4
    )
    path = as_path(routes, egress)
    # Blame an intermediate AS the victim can actually reroute around
    # (single-homed chokepoints are untestable by design — Appendix B).
    probe_tester = InboundRouteTester(graph, victim, egress)
    dropper = next(
        asn
        for asn in path[1:-1]
        if probe_tester.current_path(graph.without_as(asn)) is not None
    )

    tester = InboundRouteTester(graph, victim, egress, droppers={dropper})
    outcome = tester.localize()
    print("\nAppendix B — BGP-poisoning fault localization")
    print(f"  baseline path: {' -> '.join(f'AS{a}' for a in path)}")
    print(f"  covert dropper: AS{dropper}")
    print(f"  verdict: {outcome.verdict.value}; suspects: "
          f"{[f'AS{a}' for a in outcome.suspect_ases]} "
          f"({outcome.probes_sent} probes)")
    assert outcome.verdict in (Verdict.INTERMEDIATE_AS, Verdict.FILTERING_NETWORK)

    # And the case where the filtering network itself is the dropper.
    tester2 = InboundRouteTester(
        graph, victim, egress, filtering_network_drops=True
    )
    outcome2 = tester2.localize()
    print(f"  when the IXP itself drops: verdict: {outcome2.verdict.value}")


def main() -> None:
    graph, ixps = generate_internet()
    print(f"synthetic Internet: {len(graph)} ASes, {graph.num_edges()} edges\n")
    table3(ixps)
    coverage(graph, ixps)
    fault_localization(graph, ixps)


if __name__ == "__main__":
    main()
