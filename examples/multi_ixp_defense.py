#!/usr/bin/env python3
"""The full picture: a victim contracts VIF at the big IXPs of every
region and weathers a DNS-amplification flood.

This is Fig 11 made operational.  The inter-domain simulation decides
which attack sources' paths cross a contracted IXP; those packets go
through *real* attested enclave deployments (sealed rules, sketch logs);
the rest reach the victim unfiltered.  The output shows residual attack
volume shrinking as the victim signs up more IXPs per region — and every
contract ends with a clean, cryptographically checkable audit.

Run:  python examples/multi_ixp_defense.py
"""

from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.deploy.multi_ixp import MultiIXPDefense
from repro.interdomain import dns_resolver_population, generate_internet
from repro.interdomain.simulation import choose_victims
from repro.util.rng import deterministic_rng
from repro.util.tables import format_table

VICTIM_NAME = "victim.example"
VICTIM_PREFIX = "203.0.113.0/24"


def reflection_rule() -> FilterRule:
    """Drop 95% of reflected DNS (UDP src 53) aimed at the victim."""
    return FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix=VICTIM_PREFIX, src_ports=(53, 53), protocol=Protocol.UDP
        ),
        p_allow=0.05,
        requested_by=VICTIM_NAME,
    )


def build_wave(graph, victim, seed=2):
    """Materialize resolver IPs inside their ASes' own prefixes, so a
    packet's source address alone determines where it can be filtered."""
    from repro.interdomain import materialize_sources

    rng = deterministic_rng(f"wave:{seed}")
    population = dns_resolver_population(graph, total_resolvers=4000)
    ips_by_as = materialize_sources(graph, population, max_per_as=3)
    wave = []
    for asn, addresses in ips_by_as.items():
        if asn == victim:
            continue
        for address in addresses:
            five_tuple = FiveTuple(
                src_ip=address,
                dst_ip="203.0.113.10",
                src_port=53,
                dst_port=rng.randrange(1024, 60000),
                protocol=Protocol.UDP,
            )
            wave.append(Packet(five_tuple=five_tuple, size=1024))
    return wave


def main() -> None:
    graph, ixps = generate_internet()
    victim = choose_victims(graph, 1, seed=9)[0]
    wave = build_wave(graph, victim)
    sources = {p.five_tuple.src_ip.rsplit(".", 2)[0] for p in wave}
    print(f"victim AS{victim}; attack wave: {len(wave)} reflected packets "
          f"from {len(sources)} resolver prefixes\n")

    rows = []
    for top_n in (1, 2, 3):
        defense = MultiIXPDefense(
            graph, ixps, victim, VICTIM_NAME, VICTIM_PREFIX, top_n=top_n
        )
        defense.submit_rules([reflection_rule()])
        report = defense.carry_attack_by_ip(wave)
        audits = defense.audit_all()
        rows.append(
            [
                f"top-{top_n}/region ({defense.num_contracts} IXPs)",
                f"{report.interception_ratio:.1%}",
                f"{report.residual_ratio:.1%}",
                report.packets_filtered_at_ixps,
                "all clean" if all(e.clean for e in audits.values()) else "DIRTY",
            ]
        )
    print(format_table(
        ["VIF contracts", "packets meeting a filter", "residual at victim",
         "dropped in-network", "audits"],
        rows,
        title="Residual attack volume vs number of contracted IXPs",
    ))
    print("\nEvery drop above happened inside an attested enclave and is "
          "provable from the sketch logs; everything else is provably "
          "untouched.")


if __name__ == "__main__":
    main()
