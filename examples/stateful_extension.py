#!/usr/bin/env python3
"""Beyond the paper: auditable *stateful-style* filtering.

The paper's conclusion calls for "more sophisticated yet auditable filter
designs, such as stateful firewalls".  This example shows both sides of
that frontier:

1. a classic stateful firewall (SYN gating + clock-fed token buckets) being
   silently manipulated by the filtering network through packet reordering
   and clock starvation — the exact input channels the III-A analysis says
   an auditable filter must not read;
2. an auditable alternative: per-source-group admission quotas whose
   verdict is a pure function of (packet, quota, sealed secret), derived
   from measured rates by max-min fair sharing at round boundaries.

Run:  python examples/stateful_extension.py
"""

from repro.core.stateful import (
    AuditableRateLimitFilter,
    NaiveStatefulFirewall,
    fair_share_quotas,
)
from repro.dataplane.pktgen import PacketGenerator
from repro.tee.clock import HostClock, UntrustedClock
from repro.util.tables import format_table


def part1_manipulating_the_naive_firewall() -> None:
    host = HostClock()
    generator = PacketGenerator(11)
    flow = generator.uniform_flows(1, dst_ip="203.0.113.7")[0]

    # Reordering attack: same packets, different delivery order.
    fw = NaiveStatefulFirewall(UntrustedClock(host))
    fw.process(flow.make_packet(), syn=True)
    verdict_in_order = fw.process(flow.make_packet())

    fw2 = NaiveStatefulFirewall(UntrustedClock(host))
    verdict_reordered = fw2.process(flow.make_packet())  # data before SYN
    fw2.process(flow.make_packet(), syn=True)

    # Clock-starvation attack: stall the enclave's time feed.
    honest = NaiveStatefulFirewall(UntrustedClock(host), rate_per_s=10, burst=3)
    frozen_clock = UntrustedClock(host)
    frozen_clock.freeze()
    starved = NaiveStatefulFirewall(frozen_clock, rate_per_s=10, burst=3)
    honest.process(flow.make_packet(), syn=True)
    starved.process(flow.make_packet(), syn=True)
    honest_ok = starved_ok = 0
    for _ in range(30):
        host.advance(0.2)
        honest_ok += honest.process(flow.make_packet())
        starved_ok += starved.process(flow.make_packet())

    print("Part 1 — the naive stateful firewall is host-manipulable")
    print(f"  reordering: in-order verdict={verdict_in_order}, "
          f"reordered verdict={verdict_reordered}  (flipped!)")
    print(f"  clock starvation: honest admits {honest_ok}/30, "
          f"starved admits {starved_ok}/30\n")


def part2_auditable_quotas() -> None:
    # Measured per-/16 rates during an attack round (victim-side numbers).
    rates = {
        "198.18.0.0/16": 40e9,   # the flood
        "198.19.0.0/16": 6e9,    # a heavy but legitimate peer
        "203.0.112.0/22": 0.5e9, # normal customers
    }
    quotas = fair_share_quotas(rates, capacity_bps=10e9)
    filt = AuditableRateLimitFilter("enclave-secret")
    for quota in quotas.values():
        filt.install_quota(quota)

    rows = [
        [group, f"{rate / 1e9:.1f}", f"{quotas[group].admit_fraction:.0%}"]
        for group, rate in sorted(rates.items())
    ]
    print(format_table(
        ["source group", "measured Gb/s", "admit fraction (max-min fair)"],
        rows,
        title="Part 2 — auditable per-group quotas from measured rates",
    ))

    # Empirically, admitted connection fractions track the quotas.
    generator = PacketGenerator(5)
    flood = generator.uniform_flows(2000, src_subnet_octets=(198, 18),
                                    dst_ip="203.0.113.7")
    admitted = sum(1 for f in flood if filt.admit(f.make_packet()))
    print(f"\nflood group: {admitted / len(flood):.1%} of 2,000 connections "
          f"admitted (quota {quotas['198.18.0.0/16'].admit_fraction:.1%}) — "
          f"and the verdict for every connection is reproducible by the "
          f"victim, byte for byte.")


def main() -> None:
    part1_manipulating_the_naive_firewall()
    part2_auditable_quotas()


if __name__ == "__main__":
    main()
