#!/usr/bin/env python3
"""Quickstart: one victim, one VIF filter enclave, one audited session.

Walks the full paper workflow on the smallest possible deployment:

1. the victim authenticates via RPKI;
2. the IXP launches an SGX filter enclave, the victim remotely attests it;
3. the victim submits a rule over the secure channel
   ([DROP 50% of HTTP connections to my prefix]);
4. attack traffic flows through the filter;
5. the victim fetches the enclave's authenticated packet log and verifies
   nothing was dropped or injected outside the filter.

Run:  python examples/quickstart.py
"""

from repro import (
    FilterRule,
    FlowPattern,
    IASService,
    IXPController,
    Protocol,
    RPKIRegistry,
    VIFSession,
)
from repro.dataplane.pktgen import PacketGenerator


def main() -> None:
    # --- infrastructure ----------------------------------------------------
    ias = IASService()
    rpki = RPKIRegistry()
    rpki.authorize("victim.example", "203.0.113.0/24")

    controller = IXPController(ias)
    controller.launch_filters(1)
    print(f"launched {len(controller.enclaves)} filter enclave(s)")

    # --- the victim's session ------------------------------------------------
    session = VIFSession("victim.example", rpki, ias, controller)
    session.attest_filters()
    report = session.attestation_reports[0]
    print(f"attestation: verdict={report.verdict}, "
          f"measurement={report.quote.measurement[:16]}...")

    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix="203.0.113.0/24",
            dst_ports=(80, 80),
            protocol=Protocol.TCP,
        ),
        p_allow=0.5,  # "Drop 50% of HTTP flows coming to my network"
        requested_by="victim.example",
    )
    session.submit_rules([rule])
    print(f"installed rule: {rule.describe()}")

    # --- traffic -------------------------------------------------------------
    generator = PacketGenerator(seed=42)
    flows = generator.uniform_flows(500, dst_ip="203.0.113.10", dst_port=80)
    packets = [flow.make_packet() for flow in flows for _ in range(4)]

    delivered = controller.carry(packets)
    session.observe_delivered(delivered)
    print(f"traffic: {len(packets)} packets in, {len(delivered)} forwarded "
          f"({len(delivered) / len(packets):.0%} — the rule asked for 50% of "
          f"connections)")

    # --- verification ----------------------------------------------------------
    evidence = session.audit_round()
    print(f"audit: {evidence.describe()}")
    print(f"session state: {session.state.value}")


if __name__ == "__main__":
    main()
