#!/usr/bin/env python3
"""A full DDoS mitigation campaign at a large IXP (paper VI-B, Fig 10).

A DNS-amplification attack floods a victim.  The victim opens a VIF session
at the region's biggest IXP, submits per-upstream drop rules, the fleet
scales out through a redistribution round as measured per-rule rates come
in, and every round ends with a sketch audit.  Along the way the script
prints the capacity plan and the VI-D cost estimate for the deployment.

Run:  python examples/ddos_mitigation_campaign.py
"""

from repro.adversary import dns_amplification_flows
from repro.core.rules import RPKIRegistry
from repro.deploy import IXPDeployment, deployment_cost
from repro.interdomain import generate_internet, top_ixps_by_region
from repro.util.tables import format_table
from repro.victim import AttackDetector, RuleSynthesizer

VICTIM = "victim.example"
VICTIM_PREFIX = "203.0.113.0/24"


def main() -> None:
    # --- the Internet and the IXP -------------------------------------------
    graph, ixps = generate_internet()
    ixp = top_ixps_by_region(ixps, 1)[0]
    deployment = IXPDeployment.create(ixp, target_gbps=80)
    print(f"deploying VIF at {ixp}")
    print(format_table(["metric", "value"], deployment.plan.as_rows(),
                       title="capacity plan"))
    cost = deployment_cost(target_gbps=500, member_ases=ixp.member_count)
    print()
    print(format_table(["metric", "value"], cost.as_rows(),
                       title="cost analysis for a 500 Gb/s build-out (VI-D)"))

    # --- the victim opens a session --------------------------------------------
    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, VICTIM_PREFIX)
    session = deployment.open_session(VICTIM, rpki, deployment.controller.ias)
    print(f"\nattested {len(session.attestation_reports)} enclaves")

    # --- the attack ----------------------------------------------------------
    upstreams = sorted(ixp.members)[:4]
    resolvers = dns_amplification_flows(
        1200, victim_ip="203.0.113.10", ingress_ases=upstreams
    )
    print(f"attack: {len(resolvers)} open resolvers reflecting via "
          f"{len(upstreams)} upstream member ASes")

    # The victim's toolkit watches its saturated inbound link, extracts the
    # UDP/53 reflection signatures, and synthesizes max-min-fair rules that
    # squeeze the flood into the victim's capacity (RPKI-valid as built).
    # One packet per resolver sampled over a 10 ms slice of the flood.
    sample = [flow.make_packet() for flow in resolvers]
    detector = AttackDetector(capacity_bps=500e6, group_prefix_len=8)
    detector.observe_many(sample)
    assessment = detector.analyze(window_s=0.010)
    print(f"detector: {assessment.total_rate_bps / 1e6:.0f} Mb/s inbound, "
          f"{assessment.overload_factor:.1f}x capacity, "
          f"{len(assessment.signatures)} signatures "
          f"(top: {assessment.signatures[0].describe()})")
    rules = RuleSynthesizer(VICTIM_PREFIX, VICTIM).synthesize(
        assessment, start_rule_id=100
    )
    session.submit_rules(rules)
    print(f"submitted {len(rules)} synthesized rules over the secure channel")

    # --- round 1: traffic hits the master filter --------------------------------
    packets = [flow.make_packet() for flow in resolvers for _ in range(3)]
    delivered = deployment.controller.carry(packets)
    session.observe_delivered(delivered)
    print(f"\nround 1: {len(packets)} attack packets, {len(delivered)} "
          f"reached the victim ({len(delivered) / len(packets):.1%})")

    # --- redistribution: measured rates drive the greedy optimizer ----------------
    record = deployment.protocol.run_round(window_s=5.0)
    session.attest_filters()  # attest anything newly launched
    print(f"redistribution round {record.round_number}: "
          f"{record.num_enclaves_before} -> {record.num_enclaves_after} "
          f"enclaves, {record.rules_moved} rules moved")

    # --- round 2 -------------------------------------------------------------------
    delivered2 = deployment.controller.carry(packets)
    session.observe_delivered(delivered2)
    print(f"round 2: {len(delivered2)} of {len(packets)} reached the victim")

    # --- audit ------------------------------------------------------------------------
    evidence = session.audit_round()
    print(f"\naudit: {evidence.describe()}")
    print(f"load-balancer misbehavior reports: "
          f"{len(deployment.controller.misbehavior_reports())}")
    print(f"session state: {session.state.value}")


if __name__ == "__main__":
    main()
