#!/usr/bin/env python3
"""Why verifiability matters: every bypass attack is caught, and the
unverified baseline's rule tampering is not.

Part 1 runs the paper's three bypass attacks (III-B) plus the Goal-2
"skip the filter to save capacity" attack against a real VIF deployment and
shows who detects what.  Part 2 runs Goal-1 discrimination against a
SENSS-like *unverified* filtering service: the per-AS delivery rates
silently diverge from the requested rule with nothing to catch it — the gap
VIF exists to close.

Run:  python examples/bypass_detection_demo.py
"""

from repro.adversary import (
    BypassConfig,
    RuleTampering,
    mirai_flood_flows,
    run_bypass_scenario,
    run_discrimination_scenario,
)
from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.packet import Protocol
from repro.util.tables import format_table

RULE = FilterRule(
    rule_id=1,
    pattern=FlowPattern(
        dst_prefix="203.0.113.0/24", dst_ports=(80, 80), protocol=Protocol.TCP
    ),
    p_allow=0.5,
    requested_by="victim.example",
)

AS_A, AS_B = 64500, 64501  # the two neighbor upstreams of the intro example


def part1_bypass_matrix() -> None:
    flows = mirai_flood_flows(400, ingress_ases=(AS_A, AS_B))
    cases = [
        ("honest execution", None),
        ("drop after filtering (30%)", BypassConfig(drop_after_filtering=0.3)),
        ("injection after filtering (50%)", BypassConfig(inject_after_filtering=0.5)),
        (
            f"drop before filtering (AS{AS_A} only, 40%)",
            BypassConfig(drop_before_filtering={AS_A: 0.4}),
        ),
        ("skip filter for 30% of traffic (Goal 2)", BypassConfig(skip_filter_fraction=0.3)),
    ]
    rows = []
    for label, bypass in cases:
        result = run_bypass_scenario([RULE], flows, bypass=bypass)
        victim = ", ".join(result.victim_evidence.suspected_attacks) or "-"
        neighbors = (
            "; ".join(
                f"AS{asn}: {', '.join(e.suspected_attacks)}"
                for asn, e in result.neighbor_evidence.items()
                if not e.clean
            )
            or "-"
        )
        rows.append(
            [label, "YES" if result.detected else "no", victim, neighbors]
        )
    print(
        format_table(
            ["attack", "detected", "victim sees", "neighbors see"],
            rows,
            title="Part 1 — bypass attacks against VIF (paper III-B)",
        )
    )


def part2_unverified_baseline() -> None:
    flows = mirai_flood_flows(400, ingress_ases=(AS_A, AS_B))
    tampering = RuleTampering(per_as_p_allow={AS_A: 0.2, AS_B: 0.8})
    result = run_discrimination_scenario(
        RULE, flows, tampering=tampering, packets_per_flow=2
    )
    rows = [
        [f"AS{asn}", f"{rate:.0%}", f"{result.requested_p_allow:.0%}"]
        for asn, rate in sorted(result.per_as_delivery_rate.items())
    ]
    print()
    print(
        format_table(
            ["neighbor", "actually delivered", "victim requested"],
            rows,
            title=(
                "Part 2 — Goal 1 discrimination against an UNVERIFIED "
                "filtering service (no detection mechanism exists)"
            ),
        )
    )
    print(
        f"\nmax divergence from the requested rule: "
        f"{result.max_divergence():.0%} — and neither the victim nor the "
        f"neighbors can prove it without VIF."
    )


def main() -> None:
    part1_bypass_matrix()
    part2_unverified_baseline()


if __name__ == "__main__":
    main()
