#!/usr/bin/env python3
"""The scale-out optimizer in isolation (paper IV-B, V-C, Appendices C/D).

Compares the exact mixed-ILP (branch & bound over a HiGHS LP relaxation —
our CPLEX stand-in) against the Algorithm 1 greedy heuristic:

* solution quality on small instances (the paper reports a 5.2% average
  optimality gap for 10 <= k <= 15);
* running time as the rule count grows (Table I / Fig 9 shapes: the exact
  solver degrades quickly, the greedy stays near-real-time).

Run:  python examples/rule_distribution_study.py
"""

import time

from repro.optim import (
    BranchAndBoundSolver,
    RuleDistributionProblem,
    greedy_solve,
    validate_allocation,
)
from repro.util.stats import lognormal_bandwidths
from repro.util.tables import format_table
from repro.util.units import GBPS


def quality_study() -> None:
    rows = []
    gaps = []
    for k in range(10, 16):
        bandwidths = lognormal_bandwidths(k, 25 * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths, headroom=0.2)
        exact = BranchAndBoundSolver(node_limit=5000, time_limit_s=120).solve(problem)
        greedy = greedy_solve(problem)
        assert not validate_allocation(greedy)
        gap = (greedy.objective() - exact.objective) / exact.objective
        gaps.append(gap)
        rows.append(
            [k, f"{exact.objective:.3e}", f"{greedy.objective():.3e}", f"{gap:.1%}"]
        )
    print(format_table(
        ["k rules", "exact optimum", "greedy", "gap"],
        rows,
        title="solution quality on small instances (paper: ~5.2% average)",
    ))
    print(f"average gap: {sum(gaps) / len(gaps):.1%}\n")


def runtime_study() -> None:
    rows = []
    for k, total_gbps in ((200, 20), (1000, 50), (5000, 100), (15000, 100)):
        bandwidths = lognormal_bandwidths(k, total_gbps * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths)

        start = time.perf_counter()
        greedy = greedy_solve(problem)
        greedy_s = time.perf_counter() - start
        assert not validate_allocation(greedy)

        if k <= 200:  # exact solving beyond this is where CPLEX gave up too
            start = time.perf_counter()
            solver = BranchAndBoundSolver(
                stop_at_first_incumbent=True, node_limit=50, time_limit_s=300
            )
            solver.solve(problem)
            ilp_s = f"{time.perf_counter() - start:.2f}"
        else:
            ilp_s = "(skipped: impractical, as in Table I)"
        rows.append([k, f"{greedy_s:.3f}", ilp_s, len(greedy.assignments)])
    print(format_table(
        ["k rules", "greedy (s)", "ILP first-incumbent (s)", "enclaves"],
        rows,
        title="running time (Table I / Fig 9 shape)",
    ))


def main() -> None:
    quality_study()
    runtime_study()


if __name__ == "__main__":
    main()
